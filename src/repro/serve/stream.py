"""Server-Sent-Events framing for live campaign tailing.

The daemon streams each campaign's event log over a single long-lived HTTP
response (``GET /campaigns/<id>/events``) in the standard SSE wire format::

    id: 42
    event: iteration
    data: {"seq": 42, "generation": 0, "iteration": 3, "kind": ..., "payload": ...}

Every *persisted* :class:`~repro.campaigns.store.CampaignEvent` carries its
store sequence number as the SSE ``id``, so the client's last received id is
a durable cursor: reconnect with ``Last-Event-ID: 42`` (or ``?after=42``)
and the stream resumes right after that event — the catch-up portion is
served generation-collapsed (via
:func:`~repro.campaigns.store.replay_events`), so the concatenation of what
a client saw before and after any number of disconnects equals a single
replay of the finished log.  Durable ``reslice`` events from dynamic
campaigns (see :mod:`repro.slices.discovery`) flow through this same
kind-based framing — the SSE ``event:`` field is the stored kind, so
clients subscribe to re-slice boundaries with no extra plumbing, and
``tick`` frames carry the campaign's current ``slice_generation``.

Two unpersisted frame kinds are interleaved and carry **no id** (they never
advance the cursor): ``tick`` frames mirror live
:class:`~repro.campaigns.scheduler.SchedulerTick` progress, and ``end``
closes the stream with the campaign's terminal status (completed, paused,
failed, or draining).  Comment lines (``: ping``) keep idle connections
alive.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, IO, Iterator

from repro.serve.app import TERMINAL_STATUSES
from repro.telemetry import get_registry
from repro.utils.exceptions import ServeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.app import TunerService

#: Frame kinds that end a stream (the ``end`` event's ``data.status``).
END_EVENT = "end"
TICK_EVENT = "tick"

#: How long one SSE wait quantum is; a heartbeat comment is written after
#: ``_HEARTBEAT_QUANTA`` consecutive idle quanta so proxies and the client's
#: read timeout see regular traffic.
_WAIT_QUANTUM = 0.2
_HEARTBEAT_QUANTA = 10


def format_sse_event(
    data: dict[str, Any], event: str | None = None, event_id: int | None = None
) -> str:
    """Render one SSE frame (``id``/``event``/``data`` lines + blank line)."""
    get_registry().counter("serve.sse_frames").inc()
    lines = []
    if event_id is not None:
        lines.append(f"id: {int(event_id)}")
    if event:
        lines.append(f"event: {event}")
    lines.append(f"data: {json.dumps(data, sort_keys=True)}")
    return "\n".join(lines) + "\n\n"


def stream_campaign_events(
    app: "TunerService",
    campaign_id: str,
    after: int = 0,
    include_ticks: bool = True,
    heartbeat: bool = True,
) -> Iterator[str]:
    """Yield SSE frames for one campaign: replayed catch-up, then live tail.

    The generator ends (with an ``end`` frame) when the campaign reaches a
    terminal store status — completed, failed, or paused — or when the
    service starts draining.  ``after`` is the client's cursor (0 streams
    the log from the beginning).
    """
    app.store.get_campaign(campaign_id)  # 404 before the stream starts
    cursor = int(after)
    last_tick_seq = 0
    idle_quanta = 0
    catching_up = True
    while True:
        # The catch-up query replays (generation-collapses) the stored log
        # once; every later poll asks the store only for seq > cursor, so an
        # idle open stream costs O(new events) per quantum, not O(log).
        if catching_up:
            events = app.events_since(campaign_id, cursor)
            catching_up = False
        else:
            events = app.events_after(campaign_id, cursor)
        for event in events:
            cursor = max(cursor, event.seq)
            yield format_sse_event(
                event.to_dict(), event=event.kind, event_id=event.seq
            )
        if include_ticks:
            tick = app.last_tick(campaign_id)
            if tick is not None and tick[0] > last_tick_seq:
                last_tick_seq = tick[0]
                yield format_sse_event(tick[1], event=TICK_EVENT)
        status = app.status(campaign_id)
        if status in TERMINAL_STATUSES or app.closing:
            # A final query closes the race between the last append and the
            # status flip (completed events land before the status does).
            for event in app.events_after(campaign_id, cursor):
                cursor = max(cursor, event.seq)
                yield format_sse_event(
                    event.to_dict(), event=event.kind, event_id=event.seq
                )
            yield format_sse_event(
                {
                    "campaign_id": campaign_id,
                    "status": "draining" if app.closing else status,
                    "last_seq": cursor,
                },
                event=END_EVENT,
            )
            return
        if events:
            idle_quanta = 0
        else:
            idle_quanta += 1
            if heartbeat and idle_quanta % _HEARTBEAT_QUANTA == 0:
                yield ": ping\n\n"
        app.wait_for_activity(_WAIT_QUANTUM)


def parse_sse_stream(lines: IO[bytes]) -> Iterator[dict[str, Any]]:
    """Decode an SSE byte stream into ``{"event", "id", "data"}`` dicts.

    The inverse of :func:`format_sse_event`, used by
    :class:`~repro.serve.client.TunerClient`: comment lines are dropped,
    ``data`` is JSON-decoded, and ``id`` is ``None`` for unpersisted frames
    (ticks, end markers).  Raises :class:`ServeError` on malformed frames.
    """
    event: dict[str, Any] = {}
    data_lines: list[str] = []
    for raw in lines:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if line.startswith(":"):
            continue
        if line == "":
            if data_lines:
                try:
                    payload = json.loads("\n".join(data_lines))
                except json.JSONDecodeError as error:
                    raise ServeError(
                        f"malformed SSE data frame: {error}"
                    ) from None
                yield {
                    "event": event.get("event", "message"),
                    "id": event.get("id"),
                    "data": payload,
                }
            event, data_lines = {}, []
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "data":
            data_lines.append(value)
        elif field == "event":
            event["event"] = value
        elif field == "id":
            try:
                event["id"] = int(value)
            except ValueError:
                raise ServeError(f"malformed SSE id {value!r}") from None
