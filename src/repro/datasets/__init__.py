"""Synthetic dataset generators standing in for the paper's four datasets.

Each builder returns a :class:`~repro.datasets.blueprints.SyntheticTask`
describing the slices (names, class structure, difficulty, similarity,
acquisition cost) of one of the paper's experimental datasets:

* :func:`~repro.datasets.fashion.fashion_like_task` — Fashion-MNIST:
  10 label-defined slices of one homogeneous source.
* :func:`~repro.datasets.mixed.mixed_like_task` — Mixed-MNIST: 20 slices
  from two sources with very different difficulty.
* :func:`~repro.datasets.faces.faces_like_task` — UTKFace: 8 race x gender
  slices for race classification, per-slice crowdsourcing costs (Table 1),
  and a similarity structure that reproduces the Figure 7 influence effect.
* :func:`~repro.datasets.adult.adult_like_task` — AdultCensus: binary income
  prediction with 4 race x gender slices and a nearly flat learning curve.

The generators are infinite (simulator-style) sources: any number of fresh
examples can be drawn per slice, which is how the reproduction "acquires"
data in place of dataset search or Amazon Mechanical Turk.
"""

from repro.datasets.adult import adult_like_task
from repro.datasets.blueprints import SliceBlueprint, SyntheticTask
from repro.datasets.faces import UTKFACE_COSTS, faces_like_task
from repro.datasets.fashion import fashion_like_task
from repro.datasets.mixed import mixed_like_task
from repro.datasets.registry import available_tasks, build_task

__all__ = [
    "SliceBlueprint",
    "SyntheticTask",
    "fashion_like_task",
    "mixed_like_task",
    "faces_like_task",
    "adult_like_task",
    "UTKFACE_COSTS",
    "available_tasks",
    "build_task",
]
