"""Mixed-MNIST stand-in: 20 non-homogeneous slices from two data sources.

The paper combines Fashion-MNIST with MNIST digits to obtain 20 slices whose
learning curves differ wildly (the digit slices learn much faster — compare
the two curves of Figure 8b).  Here the "fashion" slices occupy the first ten
feature axes with relatively high noise, while the "digit" slices occupy the
next ten axes with low noise, so the digit slices are both easier and close
to independent of the fashion ones — like combining two genuinely different
datasets.
"""

from __future__ import annotations

from repro.datasets.blueprints import SliceBlueprint, SyntheticTask, orthogonal_centers
from repro.datasets.fashion import FASHION_CLASSES, _FASHION_LABEL_NOISE, _FASHION_NOISE

#: Digit slice names for the MNIST half of the task.
DIGIT_CLASSES = tuple(f"Digit{d}" for d in range(10))

#: Digits are much easier than clothing items: small noise, almost no label
#: noise, hence steep learning curves with a low floor.
_DIGIT_NOISE = {
    "Digit0": 0.55,
    "Digit1": 0.45,
    "Digit2": 0.75,
    "Digit3": 0.80,
    "Digit4": 0.70,
    "Digit5": 0.85,
    "Digit6": 0.60,
    "Digit7": 0.65,
    "Digit8": 0.90,
    "Digit9": 0.80,
}


def mixed_like_task(
    n_features: int = 64,
    fashion_radius: float = 3.0,
    digit_radius: float = 3.2,
    cost: float = 1.0,
) -> SyntheticTask:
    """Build the Mixed-MNIST-like task with 20 slices and 20 classes.

    The first ten slices/classes are the clothing categories (feature axes
    0-9); the next ten are digits (feature axes 10-19).  Because the two
    sources live on disjoint axes they interfere only weakly with each other,
    while slices within a source still compete.
    """
    fashion_centers = orthogonal_centers(
        len(FASHION_CLASSES), n_features, fashion_radius, offset=0
    )
    digit_centers = orthogonal_centers(
        len(DIGIT_CLASSES), n_features, digit_radius, offset=len(FASHION_CLASSES)
    )

    blueprints = []
    for label, class_name in enumerate(FASHION_CLASSES):
        blueprints.append(
            SliceBlueprint(
                name=class_name,
                centers=fashion_centers[label : label + 1],
                cluster_labels=(label,),
                noise=_FASHION_NOISE[class_name],
                label_noise=_FASHION_LABEL_NOISE[class_name],
                cost=cost,
            )
        )
    for offset, class_name in enumerate(DIGIT_CLASSES):
        label = len(FASHION_CLASSES) + offset
        blueprints.append(
            SliceBlueprint(
                name=class_name,
                centers=digit_centers[offset : offset + 1],
                cluster_labels=(label,),
                noise=_DIGIT_NOISE[class_name],
                label_noise=0.005,
                cost=cost,
            )
        )
    return SyntheticTask(
        name="mixed_like",
        blueprints=blueprints,
        n_classes=len(FASHION_CLASSES) + len(DIGIT_CLASSES),
    )
