"""UTKFace stand-in: 8 race x gender slices for race classification.

The paper's UTKFace experiments classify the race of face images and slice by
the combination of race (White, Black, Asian, Indian) and gender.  Two
properties of that dataset matter for Slice Tuner and are reproduced here:

* Slices of the *same race but different gender* contain similar data: in
  Figure 7, acquiring data for ``White_Male`` lowers the loss of
  ``White_Female`` while raising the loss of the other races.  The stand-in
  places the two gender clusters of each race close together (same class
  label) and the different races on a circle, so growing one race's data
  pulls the decision boundary in its favour.
* Crowdsourcing costs differ per slice (Table 1): collecting an Indian-female
  image took ~50% longer than a Black-male image.  The same cost table is
  used here and is also re-derived by the crowdsourcing simulator from
  simulated task durations.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.blueprints import SliceBlueprint, SyntheticTask

#: Race classes, in label order.
RACES = ("White", "Black", "Asian", "Indian")

#: Gender halves of each race slice.
GENDERS = ("Male", "Female")

#: The eight slice names, in the paper's W_M, W_F, B_M, ... order.
FACE_SLICES = tuple(f"{race}_{gender}" for race in RACES for gender in GENDERS)

#: Average crowdsourcing task time in seconds (Table 1 of the paper).
UTKFACE_TASK_SECONDS = {
    "White_Male": 82.1,
    "White_Female": 81.9,
    "Black_Male": 67.6,
    "Black_Female": 79.3,
    "Asian_Male": 94.8,
    "Asian_Female": 77.5,
    "Indian_Male": 91.6,
    "Indian_Female": 104.6,
}

#: Per-example acquisition cost (Table 1): task time normalized by the
#: cheapest slice and rounded to one decimal, exactly as the paper does.
UTKFACE_COSTS = {
    "White_Male": 1.2,
    "White_Female": 1.2,
    "Black_Male": 1.0,
    "Black_Female": 1.2,
    "Asian_Male": 1.4,
    "Asian_Female": 1.1,
    "Indian_Male": 1.4,
    "Indian_Female": 1.5,
}

#: Feature noise per slice: face classification is noticeably harder than
#: digit recognition, and some demographics are under-represented in web
#: imagery which shows up as noisier data.
_FACE_NOISE = {
    "White_Male": 1.30,
    "White_Female": 1.35,
    "Black_Male": 1.45,
    "Black_Female": 1.65,
    "Asian_Male": 1.50,
    "Asian_Female": 1.55,
    "Indian_Male": 1.60,
    "Indian_Female": 1.70,
}


def faces_like_task(
    n_features: int = 48,
    race_radius: float = 2.8,
    gender_offset: float = 1.0,
    label_noise: float = 0.04,
) -> SyntheticTask:
    """Build the UTKFace-like task: 4 race classes, 8 race x gender slices.

    Parameters
    ----------
    n_features:
        Feature dimensionality.
    race_radius:
        Radius of the circle the four race centers sit on; together with the
        per-slice noise this sets the overall difficulty (losses around
        0.5-0.7 as in the paper's UTKFace tables).
    gender_offset:
        Distance between the male and female cluster of the same race.  Small
        relative to ``race_radius`` so same-race slices are similar.
    label_noise:
        Irreducible label noise (ambiguous faces exist).
    """
    angles = 2.0 * np.pi * np.arange(len(RACES)) / len(RACES)
    blueprints = []
    for race_label, race in enumerate(RACES):
        race_center = np.zeros(n_features)
        race_center[0] = race_radius * np.cos(angles[race_label])
        race_center[1] = race_radius * np.sin(angles[race_label])
        for gender_index, gender in enumerate(GENDERS):
            center = race_center.copy()
            # The gender clusters sit on either side of the race center along
            # a dimension orthogonal to the race circle.
            center[2] = gender_offset if gender_index == 0 else -gender_offset
            name = f"{race}_{gender}"
            blueprints.append(
                SliceBlueprint(
                    name=name,
                    centers=center[np.newaxis, :],
                    cluster_labels=(race_label,),
                    noise=_FACE_NOISE[name],
                    label_noise=label_noise,
                    cost=UTKFACE_COSTS[name],
                )
            )
    return SyntheticTask(
        name="faces_like", blueprints=blueprints, n_classes=len(RACES)
    )
