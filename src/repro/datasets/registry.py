"""Registry mapping dataset names to task builders.

The experiment harness and benchmarks refer to datasets by name
(``"fashion_like"``, ``"mixed_like"``, ``"faces_like"``, ``"adult_like"``);
this module resolves those names, so new synthetic tasks can be plugged in by
registering a builder.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.adult import adult_like_task
from repro.datasets.blueprints import SyntheticTask
from repro.datasets.faces import faces_like_task
from repro.datasets.fashion import fashion_like_task
from repro.datasets.mixed import mixed_like_task
from repro.utils.exceptions import ConfigurationError

_REGISTRY: dict[str, Callable[..., SyntheticTask]] = {
    "fashion_like": fashion_like_task,
    "mixed_like": mixed_like_task,
    "faces_like": faces_like_task,
    "adult_like": adult_like_task,
}


def available_tasks() -> list[str]:
    """Names of all registered synthetic tasks."""
    return sorted(_REGISTRY)


def register_task(name: str, builder: Callable[..., SyntheticTask]) -> None:
    """Register a new task ``builder`` under ``name``.

    Raises if the name is already taken, so accidental shadowing of the
    built-in tasks is caught early.
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"task {name!r} is already registered")
    _REGISTRY[name] = builder


def build_task(name: str, **kwargs: object) -> SyntheticTask:
    """Build the task registered under ``name``, passing ``kwargs`` through."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r}; available: {available_tasks()}"
        ) from None
    return builder(**kwargs)
