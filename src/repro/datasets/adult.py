"""AdultCensus stand-in: binary income prediction with 4 race x gender slices.

The paper's AdultCensus experiments predict whether a person earns over $50K
and slice by race (White, Black) and gender.  Characteristic behaviour the
stand-in reproduces:

* Learning curves are nearly flat (Figure 8d shows exponents of 0.06-0.10):
  a simple linear model extracts most of the signal from a few hundred rows,
  after which label noise dominates.  A small budget (B = 300-500) is
  therefore already enough, as in Table 6.
* Both classes appear inside every slice (unlike the label-sliced image
  datasets), with class balance differing across slices.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.blueprints import SliceBlueprint, SyntheticTask

#: The four demographic slices used by the paper.
ADULT_SLICES = (
    "White_Male",
    "White_Female",
    "Black_Male",
    "Black_Female",
)

#: Fraction of positive (income > 50K) examples per slice; the real dataset
#: has a strongly skewed, demographic-dependent positive rate.
_POSITIVE_RATE = {
    "White_Male": 0.45,
    "White_Female": 0.30,
    "Black_Male": 0.25,
    "Black_Female": 0.15,
}

#: Feature noise per slice: large overlap, because income is genuinely hard
#: to predict from census features, which flattens the learning curves.
_ADULT_NOISE = {
    "White_Male": 1.20,
    "White_Female": 1.25,
    "Black_Male": 1.35,
    "Black_Female": 1.45,
}


def adult_like_task(
    n_features: int = 12,
    class_separation: float = 3.0,
    label_noise: float = 0.05,
    cost: float = 1.0,
) -> SyntheticTask:
    """Build the AdultCensus-like task: 2 classes, 4 demographic slices.

    Each slice contains two clusters — one per income class — whose weights
    follow the slice's positive rate.  The small ``class_separation`` to
    ``noise`` ratio and the relatively high ``label_noise`` make the learning
    curves flat, matching the paper's AdultCensus results.
    """
    rng_directions = np.zeros((len(ADULT_SLICES), n_features))
    # Slices differ along dimensions 2.. so the model also sees demographic
    # structure, not just the income signal on dimensions 0-1.
    for i in range(len(ADULT_SLICES)):
        rng_directions[i, 2 + (i % max(n_features - 2, 1))] = 1.5

    blueprints = []
    for i, name in enumerate(ADULT_SLICES):
        base = rng_directions[i]
        negative_center = base.copy()
        negative_center[0] = -class_separation / 2.0
        positive_center = base.copy()
        positive_center[0] = +class_separation / 2.0
        positive_rate = _POSITIVE_RATE[name]
        blueprints.append(
            SliceBlueprint(
                name=name,
                centers=np.vstack([negative_center, positive_center]),
                cluster_labels=(0, 1),
                noise=_ADULT_NOISE[name],
                label_noise=label_noise,
                cost=cost,
                cluster_weights=(1.0 - positive_rate, positive_rate),
            )
        )
    return SyntheticTask(name="adult_like", blueprints=blueprints, n_classes=2)
