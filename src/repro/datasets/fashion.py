"""Fashion-MNIST stand-in: 10 label-defined slices from one homogeneous source.

The paper slices Fashion-MNIST by its 10 clothing labels.  Here each class is
a Gaussian cluster on a circle in feature space and each slice contains
exactly the examples of one class.  Per-class noise varies, so even this
"most homogeneous" dataset has visibly different learning curves per slice —
the observation of Figure 8a.
"""

from __future__ import annotations

from repro.datasets.blueprints import SliceBlueprint, SyntheticTask, orthogonal_centers

#: Names of the ten clothing categories, mirroring Fashion-MNIST.
FASHION_CLASSES = (
    "Tshirt",
    "Trouser",
    "Pullover",
    "Dress",
    "Coat",
    "Sandal",
    "Shirt",
    "Sneaker",
    "Bag",
    "AnkleBoot",
)

#: Per-class feature noise.  "Shirt", "Pullover", and "Coat" are famously the
#: hard Fashion-MNIST classes (they are easily confused with each other), so
#: they get larger noise and therefore flatter, higher learning curves.
_FASHION_NOISE = {
    "Tshirt": 1.20,
    "Trouser": 0.80,
    "Pullover": 1.60,
    "Dress": 1.10,
    "Coat": 1.65,
    "Sandal": 0.90,
    "Shirt": 1.80,
    "Sneaker": 0.85,
    "Bag": 1.00,
    "AnkleBoot": 0.95,
}

#: Small irreducible label noise per class (mislabeled examples exist in the
#: real dataset too); harder classes have slightly more.
_FASHION_LABEL_NOISE = {
    "Tshirt": 0.015,
    "Trouser": 0.005,
    "Pullover": 0.030,
    "Dress": 0.015,
    "Coat": 0.030,
    "Sandal": 0.010,
    "Shirt": 0.035,
    "Sneaker": 0.010,
    "Bag": 0.015,
    "AnkleBoot": 0.010,
}


def fashion_like_task(
    n_features: int = 64,
    radius: float = 3.0,
    cost: float = 1.0,
) -> SyntheticTask:
    """Build the Fashion-MNIST-like task.

    Parameters
    ----------
    n_features:
        Feature dimensionality of the synthetic examples.
    radius:
        Distance of each class center from the origin along its own feature
        axis; a larger radius (relative to the per-class noise) makes the
        task easier.
    cost:
        Per-example acquisition cost (the paper uses 1 for all simulated
        acquisition datasets).

    Returns
    -------
    A :class:`~repro.datasets.blueprints.SyntheticTask` with ten slices, one
    per clothing class.
    """
    centers = orthogonal_centers(len(FASHION_CLASSES), n_features, radius)
    blueprints = []
    for label, class_name in enumerate(FASHION_CLASSES):
        blueprints.append(
            SliceBlueprint(
                name=class_name,
                centers=centers[label : label + 1],
                cluster_labels=(label,),
                noise=_FASHION_NOISE[class_name],
                label_noise=_FASHION_LABEL_NOISE[class_name],
                cost=cost,
            )
        )
    return SyntheticTask(
        name="fashion_like", blueprints=blueprints, n_classes=len(FASHION_CLASSES)
    )
