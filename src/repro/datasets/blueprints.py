"""Slice blueprints and the synthetic task generator.

A :class:`SliceBlueprint` describes how examples of one slice are generated:
a set of Gaussian clusters in feature space, the class label of each cluster,
per-slice feature noise (difficulty), and label noise (irreducible error, the
``c`` of the paper's ``y = b x^-a + c`` curve).  A :class:`SyntheticTask`
groups the blueprints of one dataset and can

* draw any number of fresh examples for a slice (the acquisition simulator),
* build the initial :class:`~repro.slices.SlicedDataset` for an experiment,
* report the per-slice acquisition costs.

Slices whose clusters are close together and share labels are "similar" in
the paper's sense (acquiring data for one helps the other), while slices with
close clusters but different labels compete for the decision boundary —
exactly the mechanism illustrated in Figure 6 and measured in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class SliceBlueprint:
    """Generative description of one slice.

    Attributes
    ----------
    name:
        Slice name, unique within a task.
    centers:
        Array of shape ``(n_clusters, n_features)``: the Gaussian cluster
        means of the slice.
    cluster_labels:
        Class label of each cluster (length ``n_clusters``).
    noise:
        Standard deviation of the isotropic Gaussian noise around each
        cluster center.  Larger noise means more class overlap, a higher
        loss floor, and a shallower learning curve.
    label_noise:
        Probability that a generated example's label is flipped to a random
        other class: the irreducible error that produces the
        diminishing-returns region of the learning curve.
    cost:
        Per-example acquisition cost (the paper's ``C(s)``).
    cluster_weights:
        Optional sampling weights over the clusters (defaults to uniform).
    """

    name: str
    centers: np.ndarray
    cluster_labels: tuple[int, ...]
    noise: float = 1.0
    label_noise: float = 0.02
    cost: float = 1.0
    cluster_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        centers = np.atleast_2d(np.asarray(self.centers, dtype=np.float64))
        object.__setattr__(self, "centers", centers)
        if centers.shape[0] != len(self.cluster_labels):
            raise ConfigurationError(
                f"slice {self.name!r}: {centers.shape[0]} centers but "
                f"{len(self.cluster_labels)} cluster labels"
            )
        check_positive(self.noise, f"noise of slice {self.name!r}")
        check_probability(self.label_noise, f"label_noise of slice {self.name!r}")
        check_positive(self.cost, f"cost of slice {self.name!r}")
        if self.cluster_weights is not None:
            if len(self.cluster_weights) != centers.shape[0]:
                raise ConfigurationError(
                    f"slice {self.name!r}: cluster_weights length mismatch"
                )
            total = float(sum(self.cluster_weights))
            if total <= 0:
                raise ConfigurationError(
                    f"slice {self.name!r}: cluster_weights must sum to a "
                    f"positive value"
                )

    @property
    def n_features(self) -> int:
        """Dimensionality of the feature space."""
        return int(self.centers.shape[1])


class SyntheticTask:
    """A complete synthetic classification task with named slices.

    Parameters
    ----------
    name:
        Task name (e.g. ``"fashion_like"``).
    blueprints:
        One blueprint per slice, in a stable order.
    n_classes:
        Total number of classes in the task.
    """

    def __init__(
        self,
        name: str,
        blueprints: Sequence[SliceBlueprint],
        n_classes: int,
    ) -> None:
        blueprints = list(blueprints)
        if not blueprints:
            raise ConfigurationError("a task needs at least one slice blueprint")
        names = [bp.name for bp in blueprints]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate slice names in task: {names}")
        widths = {bp.n_features for bp in blueprints}
        if len(widths) > 1:
            raise ConfigurationError(
                f"blueprints disagree on feature width: {sorted(widths)}"
            )
        max_label = max(max(bp.cluster_labels) for bp in blueprints)
        if n_classes <= max_label:
            raise ConfigurationError(
                f"n_classes={n_classes} but a cluster label {max_label} exists"
            )
        self.name = name
        self.n_classes = int(n_classes)
        self._blueprints: dict[str, SliceBlueprint] = {
            bp.name: bp for bp in blueprints
        }
        self._order = names

    # -- introspection ---------------------------------------------------------
    @property
    def slice_names(self) -> list[str]:
        """Slice names in their stable order."""
        return list(self._order)

    @property
    def n_features(self) -> int:
        """Feature dimensionality shared by all slices."""
        return self._blueprints[self._order[0]].n_features

    def blueprint(self, name: str) -> SliceBlueprint:
        """Return the blueprint of the named slice."""
        try:
            return self._blueprints[name]
        except KeyError:
            raise ConfigurationError(
                f"task {self.name!r} has no slice {name!r}"
            ) from None

    def costs(self) -> dict[str, float]:
        """Per-slice acquisition costs."""
        return {name: self._blueprints[name].cost for name in self._order}

    # -- generation -------------------------------------------------------------
    def generate(
        self, slice_name: str, count: int, random_state: RandomState = None
    ) -> Dataset:
        """Draw ``count`` fresh examples for ``slice_name``.

        The examples are sampled from the slice's Gaussian mixture; labels
        follow the cluster labels with probability ``1 - label_noise`` and
        are otherwise flipped to a uniformly random different class.
        """
        blueprint = self.blueprint(slice_name)
        count = int(count)
        if count <= 0:
            return Dataset.empty(blueprint.n_features)
        rng = as_generator(random_state)

        n_clusters = blueprint.centers.shape[0]
        if blueprint.cluster_weights is not None:
            weights = np.asarray(blueprint.cluster_weights, dtype=np.float64)
            weights = weights / weights.sum()
        else:
            weights = np.full(n_clusters, 1.0 / n_clusters)
        assignments = rng.choice(n_clusters, size=count, p=weights)

        features = blueprint.centers[assignments] + rng.normal(
            0.0, blueprint.noise, size=(count, blueprint.n_features)
        )
        labels = np.array(
            [blueprint.cluster_labels[a] for a in assignments], dtype=np.int64
        )

        if blueprint.label_noise > 0:
            flip = rng.random(count) < blueprint.label_noise
            if flip.any() and self.n_classes > 1:
                offsets = rng.integers(1, self.n_classes, size=int(flip.sum()))
                labels[flip] = (labels[flip] + offsets) % self.n_classes
        return Dataset(features, labels)

    def initial_sliced_dataset(
        self,
        initial_sizes: int | Mapping[str, int] | Sequence[int],
        validation_size: int = 200,
        random_state: RandomState = None,
    ) -> SlicedDataset:
        """Build the starting :class:`SlicedDataset` for an experiment.

        Parameters
        ----------
        initial_sizes:
            Either one integer applied to every slice, a mapping from slice
            name to size, or a sequence aligned with :attr:`slice_names`.
        validation_size:
            Number of held-out validation examples generated per slice (the
            paper uses 500; smaller values keep tests fast).
        random_state:
            Seed or generator.
        """
        rng = as_generator(random_state)
        sizes = self._resolve_sizes(initial_sizes)
        train_by_slice: dict[str, Dataset] = {}
        validation_by_slice: dict[str, Dataset] = {}
        for name in self._order:
            train_by_slice[name] = self.generate(name, sizes[name], rng)
            validation_by_slice[name] = self.generate(name, validation_size, rng)
        return SlicedDataset.from_datasets(
            train_by_slice,
            validation_by_slice,
            n_classes=self.n_classes,
            costs=self.costs(),
        )

    def _resolve_sizes(
        self, initial_sizes: int | Mapping[str, int] | Sequence[int]
    ) -> dict[str, int]:
        """Normalize the three accepted ``initial_sizes`` forms to a dict."""
        if isinstance(initial_sizes, Mapping):
            missing = set(self._order) - set(initial_sizes)
            if missing:
                raise ConfigurationError(
                    f"initial_sizes is missing slices: {sorted(missing)}"
                )
            return {name: int(initial_sizes[name]) for name in self._order}
        if isinstance(initial_sizes, (int, np.integer)):
            return {name: int(initial_sizes) for name in self._order}
        sizes = list(initial_sizes)
        if len(sizes) != len(self._order):
            raise ConfigurationError(
                f"initial_sizes has {len(sizes)} entries but the task has "
                f"{len(self._order)} slices"
            )
        return {name: int(size) for name, size in zip(self._order, sizes)}


def exponential_initial_sizes(
    slice_names: Sequence[str],
    largest: int = 400,
    decay: float = 0.85,
    minimum: int = 30,
) -> dict[str, int]:
    """Initial sizes following an exponential distribution (Appendix C).

    The first slice gets ``largest`` examples and each subsequent slice gets
    ``decay`` times the previous one, floored at ``minimum`` — matching the
    shape of the "Original" rows of Table 11.
    """
    sizes: dict[str, int] = {}
    current = float(largest)
    for name in slice_names:
        sizes[name] = max(int(round(current)), int(minimum))
        current *= float(decay)
    return sizes


def circle_centers(
    n_points: int, n_features: int, radius: float, phase: float = 0.0
) -> np.ndarray:
    """Place ``n_points`` cluster centers evenly on a circle in the first two dims.

    Remaining feature dimensions are zero; classifiers then separate classes
    by angle, and the ``radius``/noise ratio controls how hard that is.
    """
    if n_features < 2:
        raise ConfigurationError("circle_centers needs at least 2 features")
    angles = phase + 2.0 * np.pi * np.arange(n_points) / max(n_points, 1)
    centers = np.zeros((n_points, n_features), dtype=np.float64)
    centers[:, 0] = radius * np.cos(angles)
    centers[:, 1] = radius * np.sin(angles)
    return centers


def orthogonal_centers(
    n_points: int, n_features: int, radius: float, offset: int = 0
) -> np.ndarray:
    """Place ``n_points`` cluster centers on orthogonal axes.

    Center ``i`` is ``radius`` along feature dimension ``offset + i``, so all
    pairs of centers are equidistant (``radius * sqrt(2)``).  This keeps the
    per-class difficulty controlled purely by each slice's noise level rather
    than by which classes happen to be neighbours, which makes the synthetic
    learning curves clean power laws.
    """
    if n_features < offset + n_points:
        raise ConfigurationError(
            f"orthogonal_centers needs at least {offset + n_points} features, "
            f"got {n_features}"
        )
    centers = np.zeros((n_points, n_features), dtype=np.float64)
    for i in range(n_points):
        centers[i, offset + i] = radius
    return centers
