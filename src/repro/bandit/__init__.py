"""Multi-armed bandit comparator (Section 7, related work).

The paper observes that selective data acquisition can be viewed as a rotting
bandit problem: each slice is an arm whose reward (loss reduction per
acquired batch) decays as more data is acquired for it.  The
:class:`~repro.bandit.rotting.RottingBanditAcquirer` implements a
sliding-window UCB policy over slices and is used as an ablation baseline to
show what a model-free sequential policy achieves compared to Slice Tuner's
learning-curve-driven optimization.
"""

from repro.bandit.rotting import BanditResult, RottingBanditAcquirer

__all__ = ["RottingBanditAcquirer", "BanditResult"]
