"""Rotting-bandit style sequential data acquisition.

Each slice is an arm.  Pulling an arm means acquiring a fixed-size batch for
that slice, retraining the model, and observing the reward: the decrease of
that slice's validation loss divided by the batch's cost.  Because rewards
*rot* (diminishing returns of more data), the policy scores arms by the mean
of their most recent rewards plus a UCB exploration bonus — a sliding-window
variant of the rotting bandit algorithms referenced by the paper.

This is deliberately model-free: it uses no learning curves and no fairness
term, so comparing it against Slice Tuner isolates the value of the paper's
optimization (see ``benchmarks/test_ablation_bandit.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.source import DataSource
from repro.curves.estimator import ModelFactory, default_model_factory
from repro.fairness.report import evaluate_fairness
from repro.ml.metrics import log_loss
from repro.ml.train import Trainer, TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


@dataclass
class BanditResult:
    """Outcome of a rotting-bandit acquisition run."""

    pulls: dict[str, int] = field(default_factory=dict)
    total_acquired: dict[str, int] = field(default_factory=dict)
    spent: float = 0.0
    rewards: list[tuple[str, float]] = field(default_factory=list)
    final_loss: float = float("nan")
    final_avg_eer: float = float("nan")


class RottingBanditAcquirer:
    """Sliding-window UCB policy over slices.

    Parameters
    ----------
    batch_size:
        Examples acquired per pull.
    window:
        Number of most recent rewards per arm used for the mean estimate.
    exploration:
        UCB exploration coefficient.
    model_factory / trainer_config:
        Model used to measure rewards (retrained after every pull).
    """

    def __init__(
        self,
        batch_size: int = 50,
        window: int = 3,
        exploration: float = 0.3,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.window = check_positive_int(window, "window")
        self.exploration = float(exploration)
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self._rng = as_generator(random_state)

    def run(
        self,
        sliced: SlicedDataset,
        budget: float,
        source: DataSource,
        cost_model: CostModel | None = None,
    ) -> BanditResult:
        """Acquire data with the bandit policy until the budget runs out."""
        cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        ledger = BudgetLedger(total=float(budget))
        result = BanditResult(
            pulls={name: 0 for name in sliced.names},
            total_acquired={name: 0 for name in sliced.names},
        )
        recent_rewards: dict[str, deque[float]] = {
            name: deque(maxlen=self.window) for name in sliced.names
        }
        slice_losses = self._measure_losses(sliced)
        total_pulls = 0

        while True:
            affordable = [
                name
                for name in sliced.names
                if ledger.affordable_count(cost_model.cost(name)) >= 1
            ]
            if not affordable:
                break
            name = self._select_arm(affordable, recent_rewards, total_pulls)
            unit_cost = cost_model.cost(name)
            count = min(self.batch_size, ledger.affordable_count(unit_cost))
            delivered = source.acquire(name, count)
            ledger.charge(name, count, unit_cost)
            cost_model.record_acquisition(name, count)
            sliced.add_examples(name, delivered)

            new_losses = self._measure_losses(sliced)
            reward = (slice_losses[name] - new_losses[name]) / max(
                unit_cost * count, 1e-9
            )
            recent_rewards[name].append(reward)
            result.rewards.append((name, float(reward)))
            result.pulls[name] += 1
            result.total_acquired[name] += len(delivered)
            slice_losses = new_losses
            total_pulls += 1

        result.spent = ledger.spent
        final_model = self._train(sliced)
        report = evaluate_fairness(final_model, sliced)
        result.final_loss = report.loss
        result.final_avg_eer = report.avg_eer
        return result

    # -- internals ------------------------------------------------------------
    def _select_arm(
        self,
        affordable: list[str],
        recent_rewards: dict[str, deque[float]],
        total_pulls: int,
    ) -> str:
        """Pick the affordable arm with the best windowed UCB score."""
        best_name, best_score = affordable[0], -np.inf
        for name in affordable:
            rewards = recent_rewards[name]
            if not rewards:
                return name  # every arm is tried once before exploitation
            mean = float(np.mean(rewards))
            bonus = self.exploration * np.sqrt(
                np.log(max(total_pulls, 2)) / len(rewards)
            )
            score = mean + bonus
            if score > best_score:
                best_name, best_score = name, score
        return best_name

    def _train(self, sliced: SlicedDataset):
        model = self.model_factory(sliced.n_classes)
        trainer = Trainer(config=self.trainer_config, random_state=self._rng)
        trainer.fit(model, sliced.combined_train())
        return model

    def _measure_losses(self, sliced: SlicedDataset) -> dict[str, float]:
        model = self._train(sliced)
        return {
            name: log_loss(model, dataset)
            for name, dataset in sliced.validation_by_slice().items()
        }
