"""Rotting-bandit style sequential data acquisition.

Each slice is an arm.  Pulling an arm means acquiring a fixed-size batch for
that slice, retraining the model, and observing the reward: the decrease of
that slice's validation loss divided by the batch's cost.  Because rewards
*rot* (diminishing returns of more data), the policy scores arms by the mean
of their most recent rewards plus a UCB exploration bonus — a sliding-window
variant of the rotting bandit algorithms referenced by the paper.

This is deliberately model-free: it uses no learning curves and no fairness
term, so comparing it against Slice Tuner isolates the value of the paper's
optimization (see ``benchmarks/test_ablation_bandit.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import CostModel, TableCost
from repro.acquisition.service import AcquisitionService
from repro.acquisition.source import DataSource
from repro.core.plan import AcquisitionPlan, IterationRecord
from repro.core.registry import register_strategy
from repro.core.strategy_api import AcquisitionStrategy, TunerState
from repro.curves.estimator import ModelFactory, default_model_factory
from repro.fairness.report import evaluate_fairness
from repro.ml.metrics import log_loss
from repro.ml.train import Trainer, TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int


@dataclass
class BanditResult:
    """Outcome of a rotting-bandit acquisition run."""

    pulls: dict[str, int] = field(default_factory=dict)
    total_acquired: dict[str, int] = field(default_factory=dict)
    spent: float = 0.0
    rewards: list[tuple[str, float]] = field(default_factory=list)
    final_loss: float = float("nan")
    final_avg_eer: float = float("nan")
    fulfillments: list[dict] = field(default_factory=list)


class RottingBanditAcquirer:
    """Sliding-window UCB policy over slices.

    Parameters
    ----------
    batch_size:
        Examples acquired per pull.
    window:
        Number of most recent rewards per arm used for the mean estimate.
    exploration:
        UCB exploration coefficient.
    model_factory / trainer_config:
        Model used to measure rewards (retrained after every pull).
    """

    def __init__(
        self,
        batch_size: int = 50,
        window: int = 3,
        exploration: float = 0.3,
        model_factory: ModelFactory | None = None,
        trainer_config: TrainingConfig | None = None,
        random_state: RandomState = None,
    ) -> None:
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.window = check_positive_int(window, "window")
        self.exploration = float(exploration)
        self.model_factory = model_factory or default_model_factory
        self.trainer_config = trainer_config or TrainingConfig()
        self._rng = as_generator(random_state)

    def run(
        self,
        sliced: SlicedDataset,
        budget: float,
        source: DataSource,
        cost_model: CostModel | None = None,
    ) -> BanditResult:
        """Acquire data with the bandit policy until the budget runs out."""
        cost_model = cost_model or TableCost(
            {name: sliced[name].cost for name in sliced.names}
        )
        ledger = BudgetLedger(total=float(budget))
        service = AcquisitionService(
            source, cost_model=cost_model, ledger=ledger, sliced=sliced
        )
        result = BanditResult(
            pulls={name: 0 for name in sliced.names},
            total_acquired={name: 0 for name in sliced.names},
        )
        recent_rewards: dict[str, deque[float]] = {
            name: deque(maxlen=self.window) for name in sliced.names
        }
        slice_losses = self._measure_losses(sliced)
        total_pulls = 0
        exhausted: set[str] = set()

        while True:
            affordable = [
                name
                for name in sliced.names
                if name not in exhausted
                and ledger.affordable_count(cost_model.cost(name)) >= 1
            ]
            if not affordable:
                break
            name = self._select_arm(affordable, recent_rewards, total_pulls)
            unit_cost = cost_model.cost(name)
            count = min(self.batch_size, ledger.affordable_count(unit_cost))
            fulfillment = service.acquire(name, count, tag=f"pull:{total_pulls}")
            delivered = fulfillment.delivered_count
            result.fulfillments.append(fulfillment.summary())

            if delivered == 0:
                # Nothing was delivered (e.g. a dry pool): the data did not
                # change, so record a neutral reward instead of retraining,
                # and stop pulling this arm — it cannot deliver anymore.
                exhausted.add(name)
                reward = 0.0
            else:
                new_losses = self._measure_losses(sliced)
                reward = (slice_losses[name] - new_losses[name]) / (
                    unit_cost * delivered
                )
                slice_losses = new_losses
            recent_rewards[name].append(reward)
            result.rewards.append((name, float(reward)))
            result.pulls[name] += 1
            result.total_acquired[name] += delivered
            total_pulls += 1

        result.spent = ledger.spent
        final_model = self._train(sliced)
        report = evaluate_fairness(final_model, sliced)
        result.final_loss = report.loss
        result.final_avg_eer = report.avg_eer
        return result

    # -- internals ------------------------------------------------------------
    def _select_arm(
        self,
        affordable: list[str],
        recent_rewards: dict[str, deque[float]],
        total_pulls: int,
    ) -> str:
        """Pick the affordable arm with the best windowed UCB score."""
        return select_windowed_ucb_arm(
            affordable, recent_rewards, total_pulls, self.exploration
        )

    def _train(self, sliced: SlicedDataset):
        model = self.model_factory(sliced.n_classes)
        trainer = Trainer(config=self.trainer_config, random_state=self._rng)
        trainer.fit(model, sliced.combined_train())
        return model

    def _measure_losses(self, sliced: SlicedDataset) -> dict[str, float]:
        model = self._train(sliced)
        return {
            name: log_loss(model, dataset)
            for name, dataset in sliced.validation_by_slice().items()
        }


def select_windowed_ucb_arm(
    affordable: list[str],
    recent_rewards: Mapping[str, deque[float] | list[float]],
    total_pulls: int,
    exploration: float,
) -> str:
    """Pick the affordable arm with the best windowed UCB score.

    Arms with no reward history yet are returned immediately, so every arm is
    tried once before exploitation begins.
    """
    best_name, best_score = affordable[0], -np.inf
    for name in affordable:
        rewards = recent_rewards[name]
        if not rewards:
            return name
        mean = float(np.mean(rewards))
        bonus = exploration * np.sqrt(np.log(max(total_pulls, 2)) / len(rewards))
        score = mean + bonus
        if score > best_score:
            best_name, best_score = name, score
    return best_name


@register_strategy(
    "bandit",
    aliases=("rotting_bandit",),
    description="model-free sliding-window UCB over slices (rotting bandit)",
)
class RottingBanditStrategy(AcquisitionStrategy):
    """The rotting bandit as a pluggable acquisition strategy.

    Each proposal pulls one arm: a fixed-size batch for the slice with the
    best windowed UCB score.  :meth:`observe` retrains the model, measures
    the pulled slice's validation-loss drop per unit cost, and feeds it back
    into the sliding reward window.  Unlike
    :class:`RottingBanditAcquirer` (kept for direct, `BanditResult`-style
    use), this class plugs into :class:`~repro.core.session.TunerSession`
    and :meth:`~repro.core.tuner.SliceTuner.run`, so the bandit is
    comparable method-for-method with Slice Tuner.

    Parameters
    ----------
    batch_size:
        Examples acquired per pull.
    window:
        Number of most recent rewards per arm used for the mean estimate.
    exploration:
        UCB exploration coefficient.
    iteration_cap:
        Maximum number of pulls.  One pull is far smaller than one
        Algorithm-1 iteration, so the default is a large bound that lets the
        bandit drain the whole budget (like :class:`RottingBanditAcquirer`)
        rather than inheriting the orchestrator's ``max_iterations``.
    """

    name = "bandit"
    is_iterative = True
    uses_lam = False

    def __init__(
        self,
        batch_size: int = 50,
        window: int = 3,
        exploration: float = 0.3,
        iteration_cap: int = 10_000,
    ) -> None:
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.window = check_positive_int(window, "window")
        self.exploration = float(exploration)
        self.iteration_cap = check_positive_int(iteration_cap, "iteration_cap")
        self._recent: dict[str, deque[float]] = {}
        self._losses: dict[str, float] = {}
        self._pulls = 0
        self._last_arm: str | None = None
        self._exhausted: set[str] = set()

    # -- lifecycle ---------------------------------------------------------------
    def begin(self, state: TunerState) -> None:
        self._recent = {
            name: deque(maxlen=self.window) for name in state.sliced.names
        }
        self._losses = state.slice_validation_losses()
        self._pulls = 0
        self._last_arm = None
        self._exhausted = set()

    def propose(
        self, state: TunerState, budget: float, lam: float
    ) -> AcquisitionPlan | None:
        affordable = [
            name
            for name in state.sliced.names
            if name not in self._exhausted
            and state.ledger.affordable_count(state.cost_model.cost(name)) >= 1
        ]
        if not affordable:
            return None
        arm = select_windowed_ucb_arm(
            affordable, self._recent, self._pulls, self.exploration
        )
        unit_cost = state.cost_model.cost(arm)
        count = min(self.batch_size, state.ledger.affordable_count(unit_cost))
        self._last_arm = arm
        return AcquisitionPlan(
            counts={arm: int(count)},
            expected_cost=float(unit_cost * count),
            solver="bandit/windowed_ucb",
        )

    def observe(self, state: TunerState, record: IterationRecord) -> bool:
        arm = self._last_arm
        if arm is None:
            return True
        if record.acquired.get(arm, 0) == 0 or record.spent <= 0:
            # Nothing was delivered (e.g. the arm's pool ran dry): the data
            # did not change, so skip the retraining and record a neutral
            # reward instead of dividing loss noise by (nearly) zero cost,
            # and stop proposing this arm — it cannot deliver anymore.
            self._exhausted.add(arm)
            self._recent[arm].append(0.0)
            self._pulls += 1
            return True
        new_losses = state.slice_validation_losses()
        reward = (self._losses[arm] - new_losses[arm]) / record.spent
        self._recent[arm].append(float(reward))
        self._losses = new_losses
        self._pulls += 1
        return True

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "batch_size": self.batch_size,
            "window": self.window,
            "exploration": self.exploration,
            "iteration_cap": self.iteration_cap,
            "recent": {name: list(r) for name, r in self._recent.items()},
            "losses": dict(self._losses),
            "pulls": self._pulls,
            "exhausted": sorted(self._exhausted),
        }

    def load_state_dict(self, state) -> None:
        self.batch_size = int(state.get("batch_size", self.batch_size))
        self.window = int(state.get("window", self.window))
        self.exploration = float(state.get("exploration", self.exploration))
        self.iteration_cap = int(state.get("iteration_cap", self.iteration_cap))
        self._recent = {
            name: deque(rewards, maxlen=self.window)
            for name, rewards in state["recent"].items()
        }
        self._losses = {k: float(v) for k, v in state["losses"].items()}
        self._pulls = int(state["pulls"])
        self._exhausted = set(state.get("exhausted", ()))
