"""Fairness metric implementations.

All metrics operate on plain numbers (per-slice losses, predictions, labels)
so they can be unit-tested without training models; the report module wires
them to live models and sliced datasets.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError


def _as_loss_array(
    slice_losses: Mapping[str, float] | Sequence[float],
) -> np.ndarray:
    values = (
        list(slice_losses.values())
        if isinstance(slice_losses, Mapping)
        else list(slice_losses)
    )
    if not values:
        raise ConfigurationError("at least one slice loss is required")
    array = np.asarray(values, dtype=np.float64)
    if np.any(~np.isfinite(array)):
        raise ConfigurationError(f"slice losses must be finite, got {values}")
    return array


def unfairness(
    slice_losses: Mapping[str, float] | Sequence[float],
    overall_loss: float,
    aggregate: str = "average",
) -> float:
    """Unfairness per Definition 1 of the paper.

    ``avg_i |psi(s_i, M) - psi(D, M)|`` when ``aggregate="average"`` (the
    paper's main measure) or the maximum absolute difference when
    ``aggregate="max"`` (the worst-case variant).

    Parameters
    ----------
    slice_losses:
        Loss of the model on each slice.
    overall_loss:
        Loss of the model on the entire dataset ``D``.
    aggregate:
        ``"average"`` or ``"max"``.
    """
    losses = _as_loss_array(slice_losses)
    if not np.isfinite(overall_loss):
        raise ConfigurationError(f"overall_loss must be finite, got {overall_loss}")
    differences = np.abs(losses - float(overall_loss))
    if aggregate == "average":
        return float(differences.mean())
    if aggregate == "max":
        return float(differences.max())
    raise ConfigurationError(
        f"aggregate must be 'average' or 'max', got {aggregate!r}"
    )


def average_equalized_error_rates(
    slice_losses: Mapping[str, float] | Sequence[float], overall_loss: float
) -> float:
    """Average EER: mean absolute deviation of slice losses from the overall loss."""
    return unfairness(slice_losses, overall_loss, aggregate="average")


def max_equalized_error_rates(
    slice_losses: Mapping[str, float] | Sequence[float], overall_loss: float
) -> float:
    """Max EER: largest absolute deviation of a slice loss from the overall loss."""
    return unfairness(slice_losses, overall_loss, aggregate="max")


def demographic_parity_difference(
    predictions: Sequence[int] | np.ndarray,
    groups: Sequence[int] | np.ndarray,
    positive_class: int = 1,
) -> float:
    """Largest gap in positive-prediction rate between any two groups.

    A value of 0 means every group receives positive predictions at the same
    rate.  Provided for context; Slice Tuner optimizes equalized error rates
    instead.
    """
    predictions = np.asarray(predictions)
    groups = np.asarray(groups)
    if predictions.shape[0] != groups.shape[0]:
        raise ConfigurationError("predictions and groups must have the same length")
    if predictions.shape[0] == 0:
        raise ConfigurationError("at least one prediction is required")
    rates = []
    for group in np.unique(groups):
        mask = groups == group
        rates.append(float(np.mean(predictions[mask] == positive_class)))
    return float(max(rates) - min(rates))


def equalized_odds_difference(
    predictions: Sequence[int] | np.ndarray,
    labels: Sequence[int] | np.ndarray,
    groups: Sequence[int] | np.ndarray,
    positive_class: int = 1,
) -> float:
    """Largest gap in true- or false-positive rate between any two groups.

    Groups with no positive (respectively negative) examples are skipped for
    the corresponding rate.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    groups = np.asarray(groups)
    if not (predictions.shape[0] == labels.shape[0] == groups.shape[0]):
        raise ConfigurationError(
            "predictions, labels, and groups must have the same length"
        )
    if predictions.shape[0] == 0:
        raise ConfigurationError("at least one prediction is required")

    tpr, fpr = [], []
    for group in np.unique(groups):
        mask = groups == group
        positives = mask & (labels == positive_class)
        negatives = mask & (labels != positive_class)
        if positives.any():
            tpr.append(float(np.mean(predictions[positives] == positive_class)))
        if negatives.any():
            fpr.append(float(np.mean(predictions[negatives] == positive_class)))
    gaps = []
    if len(tpr) >= 2:
        gaps.append(max(tpr) - min(tpr))
    if len(fpr) >= 2:
        gaps.append(max(fpr) - min(fpr))
    if not gaps:
        return 0.0
    return float(max(gaps))
