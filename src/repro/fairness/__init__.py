"""Fairness measures.

The paper's unfairness measure (Definition 1) extends *equalized error rates*:
the average absolute difference between each slice's loss and the loss on the
entire dataset.  The maximum variant captures worst-case unfairness.  Classic
group-fairness measures (demographic parity difference, equalized odds
difference) are also provided for context, although Slice Tuner itself only
optimizes equalized error rates.
"""

from repro.fairness.metrics import (
    average_equalized_error_rates,
    demographic_parity_difference,
    equalized_odds_difference,
    max_equalized_error_rates,
    unfairness,
)
from repro.fairness.report import FairnessReport, evaluate_fairness

__all__ = [
    "unfairness",
    "average_equalized_error_rates",
    "max_equalized_error_rates",
    "demographic_parity_difference",
    "equalized_odds_difference",
    "FairnessReport",
    "evaluate_fairness",
]
