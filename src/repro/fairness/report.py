"""Fairness/accuracy evaluation of a trained model on a sliced dataset.

This is the "Model Training and Analysis" box of the paper's Figure 4: given
a model and the per-slice validation sets, compute the overall loss, every
slice's loss, and the unfairness measures, packaged for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fairness.metrics import (
    average_equalized_error_rates,
    max_equalized_error_rates,
)
from repro.ml.metrics import ProbabilisticClassifier, log_loss, overall_loss
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.tables import format_table


@dataclass
class FairnessReport:
    """Loss and unfairness of one trained model on one sliced dataset.

    Attributes
    ----------
    loss:
        Log loss on the union of all slices' validation data (the paper's
        ``psi(D, M)``).
    slice_losses:
        Log loss per slice.
    avg_eer:
        Average equalized error rates (Definition 1).
    max_eer:
        Maximum equalized error rates.
    slice_sizes:
        Training-set size per slice at evaluation time (for context in
        reports).
    """

    loss: float
    slice_losses: dict[str, float]
    avg_eer: float
    max_eer: float
    slice_sizes: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible representation of the report."""
        return {
            "loss": self.loss,
            "slice_losses": dict(self.slice_losses),
            "avg_eer": self.avg_eer,
            "max_eer": self.max_eer,
            "slice_sizes": dict(self.slice_sizes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FairnessReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            loss=float(data["loss"]),
            slice_losses={k: float(v) for k, v in data["slice_losses"].items()},
            avg_eer=float(data["avg_eer"]),
            max_eer=float(data["max_eer"]),
            slice_sizes={k: int(v) for k, v in data.get("slice_sizes", {}).items()},
        )

    def worst_slice(self) -> str:
        """Name of the slice with the highest loss."""
        return max(self.slice_losses, key=self.slice_losses.get)

    def best_slice(self) -> str:
        """Name of the slice with the lowest loss."""
        return min(self.slice_losses, key=self.slice_losses.get)

    def to_text(self) -> str:
        """Render the report as an aligned text table."""
        rows = [
            [name, self.slice_sizes.get(name, 0), loss, abs(loss - self.loss)]
            for name, loss in self.slice_losses.items()
        ]
        table = format_table(
            headers=["slice", "train size", "loss", "|loss - overall|"],
            rows=rows,
            title=(
                f"overall loss = {self.loss:.4f}   avg EER = {self.avg_eer:.4f}   "
                f"max EER = {self.max_eer:.4f}"
            ),
        )
        return table


def evaluate_fairness(
    model: ProbabilisticClassifier, sliced: SlicedDataset
) -> FairnessReport:
    """Evaluate ``model`` on every slice's validation data of ``sliced``."""
    validation = sliced.validation_by_slice()
    slice_losses = {
        name: log_loss(model, dataset) for name, dataset in validation.items()
    }
    loss = overall_loss(model, list(validation.values()))
    return FairnessReport(
        loss=loss,
        slice_losses=slice_losses,
        avg_eer=average_equalized_error_rates(slice_losses, loss),
        max_eer=max_equalized_error_rates(slice_losses, loss),
        slice_sizes={name: sliced[name].size for name in sliced.names},
    )
