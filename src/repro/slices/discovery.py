"""Slice discovery: find underperforming slices from model behaviour.

Slice Tuner takes its slices as *given* and only sketches automatic slicing
in Appendix A.  This module adds the missing layer: a pluggable
:class:`SliceDiscoveryMethod` protocol (fit on a model's behaviour over a
dataset, then transform the data into a fresh
:class:`~repro.slices.sliced_dataset.SlicedDataset`) behind a registry that
mirrors the acquisition-strategy registry in :mod:`repro.core.registry`.

The lifecycle is::

    method = get_discovery_method("kmeans", n_slices=4, seed=0)
    method.fit(model, pool)              # learn slice boundaries
    sliced = method.transform(sliced)    # re-partition train + validation
    method.assign(features)              # route new rows to slices
    method.fingerprint()                 # content hash of the boundaries

Every method is **seeded and deterministic**: fitting the same data with the
same config yields byte-identical :class:`~repro.slices.slice.SliceSpec`
lists and the same :meth:`SliceDiscoveryMethod.fingerprint`, regardless of
process or executor.  That determinism is what lets dynamic re-slicing
(:class:`~repro.core.session.TunerSession` with ``reslice_every``) survive
crash-resume byte-identically: a resumed run re-discovers exactly the same
boundaries the interrupted run did.

Built-in methods live in :mod:`repro.slices.methods` and are registered
lazily on first lookup, exactly like acquisition strategies:

* ``"stump"`` — error-driven feature-threshold rule induction (decision
  stumps over the misclassification indicator),
* ``"kmeans"`` — error-aware k-means clustering in feature space,
* ``"auto"`` — the Appendix-A :class:`~repro.slices.auto_slicer.AutoSlicer`
  adapted onto the protocol.
"""

from __future__ import annotations

import functools
import hashlib
import json
import time
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.slices.slice import SliceSpec
from repro.slices.sliced_dataset import SlicedDataset
from repro.slices.validation import check_discovered_partition
from repro.telemetry import get_registry, get_tracer
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "SliceDiscoveryMethod",
    "register_discovery_method",
    "unregister_discovery_method",
    "get_discovery_method",
    "available_discovery_methods",
    "discovery_method_descriptions",
    "is_discovery_method",
]


class SliceDiscoveryMethod(ABC):
    """Base class for pluggable slice discovery methods.

    Subclasses declare a nested frozen ``Config`` dataclass holding every
    knob (including an integer ``seed``), implement :meth:`fit` to learn a
    partition of feature space from a trained model's behaviour, and
    implement the two region primitives (:meth:`_assign_regions`,
    :meth:`_region_names`).  The concrete :meth:`transform` then re-slices a
    :class:`~repro.slices.sliced_dataset.SlicedDataset`, consolidating
    regions that would produce an empty train or validation side and
    validating the result with
    :func:`~repro.slices.validation.check_discovered_partition`.

    Parameters
    ----------
    config:
        A pre-built ``Config`` instance, or ``None`` to build one from
        ``**kwargs`` (the domino-style convenience constructor).
    """

    @dataclass(frozen=True)
    class Config:
        seed: int = 0

    def __init__(self, config: "SliceDiscoveryMethod.Config | None" = None, **kwargs):
        if config is not None and kwargs:
            raise ConfigurationError(
                "pass either a Config instance or keyword overrides, not both"
            )
        try:
            self.config = config if config is not None else type(self).Config(**kwargs)
        except TypeError as error:
            raise ConfigurationError(
                f"invalid {type(self).__name__} configuration: {error}"
            ) from error
        if not isinstance(self.config, type(self).Config):
            raise ConfigurationError(
                f"config must be a {type(self).__name__}.Config, "
                f"got {type(self.config).__name__}"
            )
        #: Registry name; filled in by :func:`get_discovery_method`.
        self.name: str = type(self).__name__
        self._fitted = False
        self._specs: tuple[SliceSpec, ...] | None = None
        self._remap: np.ndarray | None = None
        self._final_of_region: np.ndarray | None = None

    def __init_subclass__(cls, **kwargs) -> None:
        """Trace every concrete ``fit`` — including user-registered methods.

        Each subclass defining its own ``fit`` gets it wrapped in a
        ``discovery.fit`` span plus a ``discovery.fit_seconds`` histogram
        observation, so the protocol stays a plain method to implement and
        instrumentation cannot be forgotten.
        """
        super().__init_subclass__(**kwargs)
        fit = cls.__dict__.get("fit")
        if fit is None or getattr(fit, "_telemetry_wrapped", False):
            return

        @functools.wraps(fit)
        def traced_fit(self, *args, **fit_kwargs):
            with get_tracer().span(
                "discovery.fit",
                attributes={"method": type(self).__name__},
            ):
                started = time.perf_counter()
                try:
                    return fit(self, *args, **fit_kwargs)
                finally:
                    get_registry().histogram(
                        "discovery.fit_seconds"
                    ).observe(time.perf_counter() - started)

        traced_fit._telemetry_wrapped = True
        cls.fit = traced_fit

    # -- the protocol ----------------------------------------------------------
    @abstractmethod
    def fit(
        self,
        model,
        dataset: Dataset,
        predictions: np.ndarray | None = None,
    ) -> "SliceDiscoveryMethod":
        """Learn slice boundaries from ``model``'s behaviour on ``dataset``.

        ``predictions`` are the model's hard labels for ``dataset``; when
        ``None`` they are computed from ``model`` (methods that do not need
        a model, like ``"auto"``, accept ``model=None``).  Returns ``self``.
        """

    @abstractmethod
    def _assign_regions(self, features: np.ndarray) -> np.ndarray:
        """Raw region index in ``[0, n_regions)`` for every row (total)."""

    @abstractmethod
    def _region_names(self) -> list[str]:
        """Stable, human-readable name per raw region."""

    @abstractmethod
    def _boundary_payload(self) -> object:
        """JSON-serializable description of the fitted boundaries."""

    # -- fitted-state helpers --------------------------------------------------
    def _mark_fitted(self) -> "SliceDiscoveryMethod":
        self._fitted = True
        self._specs = None
        self._remap = None
        self._final_of_region = None
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ConfigurationError(
                f"{type(self).__name__} must be fit() before use"
            )

    def _require_transformed(self) -> None:
        self._require_fitted()
        if self._specs is None:
            raise ConfigurationError(
                f"{type(self).__name__} has no final slices yet; "
                "call transform() first"
            )

    # -- transform -------------------------------------------------------------
    def transform(self, data: "SlicedDataset | Dataset") -> SlicedDataset:
        """Re-partition ``data`` into the discovered slices.

        A :class:`~repro.slices.sliced_dataset.SlicedDataset` input has both
        its train and validation pools reassigned (each discovered slice's
        cost is the mean acquisition cost of the originating rows); a bare
        :class:`~repro.ml.data.Dataset` is treated as train-only with empty
        validation sides.  Regions whose train or validation side would be
        empty are merged into the largest surviving region, so downstream
        curve estimation always sees usable slices.
        """
        self._require_fitted()
        if isinstance(data, SlicedDataset):
            train_parts = [s.train for s in data if len(s.train) > 0]
            train_costs = np.concatenate(
                [np.full(len(s.train), s.cost) for s in data if len(s.train) > 0]
            ) if train_parts else np.zeros(0)
            train = (
                Dataset.concatenate(train_parts)
                if train_parts
                else Dataset.empty(data.n_features)
            )
            validation = data.combined_validation()
            n_classes = data.n_classes
        else:
            train = data
            train_costs = np.ones(len(train))
            validation = Dataset.empty(train.n_features)
            n_classes = train.n_classes
        if len(train) == 0:
            raise ConfigurationError("cannot transform an empty dataset")

        raw_train = np.asarray(self._assign_regions(train.features), dtype=np.int64)
        raw_val = np.asarray(
            self._assign_regions(validation.features), dtype=np.int64
        ) if len(validation) else np.zeros(0, dtype=np.int64)
        names = self._region_names()
        n_regions = len(names)
        remap = self._consolidate(raw_train, raw_val, n_regions, len(validation) > 0)
        self._remap = remap
        final_train = remap[raw_train]
        final_val = remap[raw_val] if len(validation) else raw_val

        kept = sorted(set(int(r) for r in remap))
        kept_names = [names[region] for region in kept]
        renumber = {region: index for index, region in enumerate(kept)}

        train_by_slice: dict[str, Dataset] = {}
        validation_by_slice: dict[str, Dataset] = {}
        costs: dict[str, float] = {}
        train_indices: dict[str, np.ndarray] = {}
        val_indices: dict[str, np.ndarray] = {}
        for region, name in zip(kept, kept_names):
            rows = np.nonzero(final_train == region)[0]
            train_indices[name] = rows
            train_by_slice[name] = train.subset(rows)
            costs[name] = float(np.mean(train_costs[rows])) if len(rows) else 1.0
            val_rows = (
                np.nonzero(final_val == region)[0]
                if len(validation)
                else np.zeros(0, dtype=np.int64)
            )
            val_indices[name] = val_rows
            validation_by_slice[name] = validation.subset(val_rows)

        check_discovered_partition(train, train_indices)
        if len(validation):
            check_discovered_partition(validation, val_indices)

        self._specs = tuple(
            SliceSpec(name=name, cost=costs[name]) for name in kept_names
        )
        # Final slice index per raw region, for assign() on future rows.
        self._final_of_region = np.array(
            [renumber[int(remap[region])] for region in range(n_regions)],
            dtype=np.int64,
        )
        return SlicedDataset.from_datasets(
            train_by_slice, validation_by_slice, n_classes=n_classes, costs=costs
        )

    @staticmethod
    def _consolidate(
        raw_train: np.ndarray,
        raw_val: np.ndarray,
        n_regions: int,
        has_validation: bool,
    ) -> np.ndarray:
        """Map each raw region onto a region with data on every side.

        Regions with an empty train side (or, when validation data exists,
        an empty validation side) are merged into the surviving region with
        the most training rows — deterministic, order-independent, and
        documented behaviour rather than a silent bad split.
        """
        train_counts = np.bincount(raw_train, minlength=n_regions)
        val_counts = np.bincount(raw_val, minlength=n_regions)
        alive = train_counts > 0
        if has_validation:
            alive &= val_counts > 0
        if not alive.any():
            raise ConfigurationError(
                "slice discovery produced no region with both train and "
                "validation data; loosen the method configuration"
            )
        # Largest surviving region; ties break toward the lowest index.
        sink = int(np.argmax(np.where(alive, train_counts, -1)))
        remap = np.arange(n_regions, dtype=np.int64)
        remap[~alive] = sink
        return remap

    # -- fitted products -------------------------------------------------------
    def assign(self, features: np.ndarray) -> np.ndarray:
        """Final slice index (ordered like :meth:`specs`) for every row."""
        self._require_transformed()
        raw = np.asarray(self._assign_regions(features), dtype=np.int64)
        return self._final_of_region[raw]

    def specs(self) -> tuple[SliceSpec, ...]:
        """The discovered :class:`~repro.slices.slice.SliceSpec` list."""
        self._require_transformed()
        return self._specs

    @property
    def slice_names(self) -> list[str]:
        """Names of the discovered slices, in assignment order."""
        return [spec.name for spec in self.specs()]

    def fingerprint(self) -> str:
        """Content hash of the discovered boundaries (hex sha256).

        Covers the method name, its full configuration, the final slice
        specs, and the method-specific boundary payload, so two fits agree
        on the fingerprint iff they produced the same partition.
        """
        self._require_transformed()
        payload = {
            "method": self.name,
            "config": asdict(self.config),
            "specs": [[spec.name, spec.cost] for spec in self._specs],
            "remap": [int(r) for r in self._final_of_region],
            "boundaries": self._boundary_payload(),
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# The discovery-method registry (mirrors repro.core.registry).
# ---------------------------------------------------------------------------

#: A callable producing a discovery method; typically the class itself.
DiscoveryFactory = Callable[..., SliceDiscoveryMethod]

_REGISTRY: dict[str, DiscoveryFactory] = {}
_PRIMARY: dict[str, str] = {}
_DESCRIPTIONS: dict[str, str] = {}
_BUILTINS_LOADED = False


def _normalize(name: str) -> str:
    return name.strip().lower()


def register_discovery_method(
    name: str,
    *,
    aliases: Sequence[str] = (),
    description: str = "",
    overwrite: bool = False,
) -> Callable[[DiscoveryFactory], DiscoveryFactory]:
    """Class/function decorator registering a discovery method.

    Usage::

        @register_discovery_method("kmeans", aliases=("error_kmeans",))
        class ErrorKMeansDiscovery(SliceDiscoveryMethod):
            ...
    """

    def decorator(factory: DiscoveryFactory) -> DiscoveryFactory:
        primary = _normalize(name)
        all_names = [primary] + [_normalize(alias) for alias in aliases]
        for candidate in all_names:
            if not candidate:
                raise ConfigurationError("discovery method names must be non-empty")
            if candidate in _REGISTRY and not overwrite:
                raise ConfigurationError(
                    f"discovery method {candidate!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
        doc = description
        if not doc:
            lines = (factory.__doc__ or "").strip().splitlines()
            doc = lines[0] if lines else ""
        for candidate in all_names:
            _REGISTRY[candidate] = factory
            _PRIMARY[candidate] = primary
            _DESCRIPTIONS[candidate] = doc
        return factory

    return decorator


def unregister_discovery_method(name: str) -> None:
    """Remove a discovery method and every alias sharing its primary name."""
    key = _normalize(name)
    _ensure_builtins()
    if key not in _REGISTRY:
        raise ConfigurationError(f"unknown discovery method {name!r}")
    primary = _PRIMARY[key]
    for candidate in [c for c, p in _PRIMARY.items() if p == primary]:
        _REGISTRY.pop(candidate, None)
        _PRIMARY.pop(candidate, None)
        _DESCRIPTIONS.pop(candidate, None)


def _ensure_builtins() -> None:
    """Import the built-in method modules exactly once (registration side)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.slices.methods import auto, kmeans, stump  # noqa: F401


def get_discovery_method(name: str, **kwargs) -> SliceDiscoveryMethod:
    """Instantiate the named discovery method with ``**kwargs`` config."""
    _ensure_builtins()
    key = _normalize(name)
    factory = _REGISTRY.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown discovery method {name!r}; "
            f"available: {', '.join(available_discovery_methods())}"
        )
    method = factory(**kwargs)
    if not isinstance(method, SliceDiscoveryMethod):
        raise ConfigurationError(
            f"factory for {name!r} returned {type(method).__name__}, "
            "not a SliceDiscoveryMethod"
        )
    method.name = _PRIMARY[key]
    return method


def available_discovery_methods() -> tuple[str, ...]:
    """Sorted primary names of all registered discovery methods."""
    _ensure_builtins()
    return tuple(sorted(set(_PRIMARY.values())))


def discovery_method_descriptions() -> dict[str, str]:
    """Mapping of primary method name to its one-line description."""
    _ensure_builtins()
    return {
        name: _DESCRIPTIONS.get(name, "")
        for name in available_discovery_methods()
    }


def is_discovery_method(name: str) -> bool:
    """True when ``name`` (or an alias) resolves to a registered method."""
    _ensure_builtins()
    return _normalize(name) in _REGISTRY
