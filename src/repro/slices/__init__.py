"""Data slicing: slice definitions, partition management, automatic slicing.

A *slice* is a named subset of the training data (Section 2.1 of the paper);
the slices partition the dataset.  The central container is
:class:`~repro.slices.sliced_dataset.SlicedDataset`, which keeps per-slice
training data, per-slice validation data, and per-slice acquisition cost, and
is the object the Slice Tuner core operates on.
"""

from repro.slices.auto_slicer import AutoSlicer, SliceCandidate
from repro.slices.predicates import FeaturePredicate, partition_by_predicates
from repro.slices.slice import Slice, SliceSpec
from repro.slices.sliced_dataset import SlicedDataset
from repro.slices.validation import check_partition, imbalance_ratio

__all__ = [
    "Slice",
    "SliceSpec",
    "SlicedDataset",
    "FeaturePredicate",
    "partition_by_predicates",
    "AutoSlicer",
    "SliceCandidate",
    "check_partition",
    "imbalance_ratio",
]
