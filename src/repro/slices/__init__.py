"""Data slicing: slice definitions, partition management, slice discovery.

A *slice* is a named subset of the training data (Section 2.1 of the paper);
the slices partition the dataset.  The central container is
:class:`~repro.slices.sliced_dataset.SlicedDataset`, which keeps per-slice
training data, per-slice validation data, and per-slice acquisition cost, and
is the object the Slice Tuner core operates on.

Slices can be *given* (the paper's setting), produced by the Appendix-A
:class:`~repro.slices.auto_slicer.AutoSlicer`, or *discovered* from model
behaviour through the pluggable :mod:`~repro.slices.discovery` registry
(``get_discovery_method`` / ``available_discovery_methods``), whose built-in
methods live in :mod:`~repro.slices.methods`.
"""

from repro.slices.auto_slicer import AutoSlicer, SliceCandidate
from repro.slices.discovery import (
    SliceDiscoveryMethod,
    available_discovery_methods,
    discovery_method_descriptions,
    get_discovery_method,
    is_discovery_method,
    register_discovery_method,
    unregister_discovery_method,
)
from repro.slices.predicates import FeaturePredicate, partition_by_predicates
from repro.slices.slice import Slice, SliceSpec
from repro.slices.sliced_dataset import SlicedDataset
from repro.slices.validation import (
    check_discovered_partition,
    check_partition,
    imbalance_ratio,
)

__all__ = [
    "Slice",
    "SliceSpec",
    "SlicedDataset",
    "FeaturePredicate",
    "partition_by_predicates",
    "AutoSlicer",
    "SliceCandidate",
    "SliceDiscoveryMethod",
    "register_discovery_method",
    "unregister_discovery_method",
    "get_discovery_method",
    "available_discovery_methods",
    "discovery_method_descriptions",
    "is_discovery_method",
    "check_partition",
    "check_discovered_partition",
    "imbalance_ratio",
]
