"""Predicate-based slicing.

The paper's "typical way to define a slice is to use conjunctions of
feature-value pairs, e.g. region = Europe AND gender = Female".  A
:class:`FeaturePredicate` expresses such a conjunction over feature columns
(by index) and :func:`partition_by_predicates` splits a dataset by a list of
predicates, verifying that the result is a partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.utils.exceptions import SlicingError


@dataclass(frozen=True)
class FeaturePredicate:
    """A conjunction of equality and range conditions over feature columns.

    Attributes
    ----------
    equals:
        Mapping from column index to the exact value the column must take.
        Comparison uses ``np.isclose`` so encoded categorical floats match.
    ranges:
        Mapping from column index to an inclusive ``(low, high)`` interval.
    label:
        Optional label value the example must have (the paper also slices by
        label, e.g. one slice per Fashion-MNIST class).
    """

    equals: Mapping[int, float] = field(default_factory=dict)
    ranges: Mapping[int, tuple[float, float]] = field(default_factory=dict)
    label: int | None = None

    def mask(self, dataset: Dataset) -> np.ndarray:
        """Boolean mask over ``dataset`` rows satisfying the predicate."""
        mask = np.ones(len(dataset), dtype=bool)
        for column, value in self.equals.items():
            mask &= np.isclose(dataset.features[:, int(column)], float(value))
        for column, (low, high) in self.ranges.items():
            col = dataset.features[:, int(column)]
            mask &= (col >= float(low)) & (col <= float(high))
        if self.label is not None:
            mask &= dataset.labels == int(self.label)
        return mask

    def matches(self, dataset: Dataset) -> Dataset:
        """Return the subset of ``dataset`` satisfying the predicate."""
        return dataset.subset(np.nonzero(self.mask(dataset))[0])

    def describe(self) -> str:
        """Human-readable conjunction, e.g. ``x3 = 1.0 AND label = 2``."""
        parts = [f"x{c} = {v}" for c, v in self.equals.items()]
        parts += [f"{lo} <= x{c} <= {hi}" for c, (lo, hi) in self.ranges.items()]
        if self.label is not None:
            parts.append(f"label = {self.label}")
        return " AND ".join(parts) if parts else "TRUE"


def partition_by_predicates(
    dataset: Dataset,
    predicates: Mapping[str, FeaturePredicate] | Sequence[FeaturePredicate],
    require_partition: bool = True,
) -> dict[str, Dataset]:
    """Split ``dataset`` into named subsets, one per predicate.

    Parameters
    ----------
    dataset:
        The dataset to slice.
    predicates:
        Either a mapping from slice name to predicate, or a sequence of
        predicates (auto-named ``slice_0``, ``slice_1``, ...).
    require_partition:
        When True (the default, matching the paper's assumption), raise
        :class:`~repro.utils.exceptions.SlicingError` if the predicates
        overlap or leave examples uncovered.

    Returns
    -------
    Mapping from slice name to the matching subset.
    """
    if not isinstance(predicates, Mapping):
        predicates = {f"slice_{i}": p for i, p in enumerate(predicates)}
    if not predicates:
        raise SlicingError("at least one predicate is required")

    masks = {name: pred.mask(dataset) for name, pred in predicates.items()}
    if require_partition:
        coverage = np.zeros(len(dataset), dtype=np.int64)
        for mask in masks.values():
            coverage += mask.astype(np.int64)
        uncovered = int(np.sum(coverage == 0))
        overlapping = int(np.sum(coverage > 1))
        if uncovered or overlapping:
            raise SlicingError(
                f"predicates do not partition the dataset: {uncovered} uncovered "
                f"examples, {overlapping} examples covered more than once"
            )
    return {
        name: dataset.subset(np.nonzero(mask)[0]) for name, mask in masks.items()
    }


def partition_by_label(dataset: Dataset, n_classes: int | None = None) -> dict[str, Dataset]:
    """Split ``dataset`` into one slice per label value.

    This mirrors the Fashion-MNIST setting of the paper, where each clothing
    category is its own slice.
    """
    n_classes = n_classes if n_classes is not None else dataset.n_classes
    return {
        f"label_{label}": dataset.subset(np.nonzero(dataset.labels == label)[0])
        for label in range(n_classes)
    }
