"""Error-aware k-means slice discovery (``"kmeans"``).

Clusters the fit data in *standardized feature space augmented with the
misclassification indicator*: rows the model gets wrong are pushed apart
from rows it gets right (by ``error_weight``), so Lloyd iterations carve
out error-dense regions.  The final partition is the Voronoi diagram of the
per-cluster centroids projected back onto plain feature space, which makes
:meth:`assign` a deterministic function of features alone — new, unlabeled
rows route to slices without needing the model.

Determinism: the only randomness is the seeded initial-center choice; Lloyd
runs a fixed number of iterations, ties in the nearest-center argmin keep
the lowest cluster index, and empty clusters are re-seeded with the point
farthest from its center (again lowest-index ties).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.data import Dataset
from repro.slices.discovery import SliceDiscoveryMethod, register_discovery_method
from repro.utils.exceptions import ConfigurationError


@register_discovery_method(
    "kmeans",
    aliases=("error_kmeans",),
    description="error-aware k-means clustering in feature space",
)
class ErrorKMeansDiscovery(SliceDiscoveryMethod):
    """K-means over features augmented with the error indicator."""

    @dataclass(frozen=True)
    class Config:
        n_slices: int = 4
        n_iterations: int = 30
        error_weight: float = 3.0
        seed: int = 0

        def __post_init__(self) -> None:
            if self.n_slices < 1:
                raise ConfigurationError(
                    f"n_slices must be >= 1, got {self.n_slices}"
                )
            if self.n_iterations < 1:
                raise ConfigurationError(
                    f"n_iterations must be >= 1, got {self.n_iterations}"
                )
            if self.error_weight < 0:
                raise ConfigurationError(
                    f"error_weight must be >= 0, got {self.error_weight}"
                )

    def fit(self, model, dataset: Dataset, predictions=None):
        if len(dataset) == 0:
            raise ConfigurationError("cannot discover slices on an empty dataset")
        if predictions is None:
            if model is None:
                raise ConfigurationError(
                    "kmeans discovery needs a model or precomputed predictions"
                )
            predictions = model.predict(dataset.features)
        predictions = np.asarray(predictions)
        if predictions.shape != dataset.labels.shape:
            raise ConfigurationError(
                f"predictions shape {predictions.shape} does not match "
                f"labels shape {dataset.labels.shape}"
            )
        errors = (predictions != dataset.labels).astype(np.float64)

        self._mean = dataset.features.mean(axis=0)
        self._std = np.maximum(dataset.features.std(axis=0), 1e-9)
        standardized = (dataset.features - self._mean) / self._std
        augmented = np.column_stack(
            [standardized, self.config.error_weight * errors]
        )

        n = len(dataset)
        k = min(self.config.n_slices, n)
        rng = np.random.default_rng(self.config.seed)
        centers = augmented[np.sort(rng.choice(n, size=k, replace=False))].copy()
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(self.config.n_iterations):
            distances = np.linalg.norm(
                augmented[:, None, :] - centers[None, :, :], axis=2
            )
            labels = distances.argmin(axis=1)
            for cluster in range(k):
                members = labels == cluster
                if members.any():
                    centers[cluster] = augmented[members].mean(axis=0)
                else:
                    # Re-seed the empty cluster with the point farthest from
                    # its current center (lowest row index on ties).
                    own = distances[np.arange(n), labels]
                    centers[cluster] = augmented[int(own.argmax())]

        # Project back to plain feature space: the partition served by
        # assign() is the Voronoi diagram of these feature-only centroids.
        kept_centers = []
        kept_errors = []
        for cluster in range(k):
            members = labels == cluster
            if members.any():
                kept_centers.append(standardized[members].mean(axis=0))
                kept_errors.append(float(errors[members].mean()))
        self._centers = np.array(kept_centers)
        self._error_rates = kept_errors
        return self._mark_fitted()

    def _assign_regions(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if len(features) == 0:
            return np.zeros(0, dtype=np.int64)
        standardized = (features - self._mean) / self._std
        distances = np.linalg.norm(
            standardized[:, None, :] - self._centers[None, :, :], axis=2
        )
        return distances.argmin(axis=1).astype(np.int64)

    def _region_names(self) -> list[str]:
        return [f"km{index}" for index in range(len(self._centers))]

    def _boundary_payload(self) -> object:
        return {
            "mean": [float(v) for v in self._mean],
            "std": [float(v) for v in self._std],
            "centers": [[float(v) for v in row] for row in self._centers],
            "error_rates": [round(rate, 12) for rate in self._error_rates],
        }
