"""The Appendix-A :class:`~repro.slices.auto_slicer.AutoSlicer` as a
discovery method (``"auto"``).

This adapter ports the legacy entropy-driven slicer onto the
:class:`~repro.slices.discovery.SliceDiscoveryMethod` protocol without
changing its behaviour: it drives the *same* ``AutoSlicer`` (same
``_best_split`` search, same frontier policy, same leaf names), so
``--discover auto`` and the legacy ``AutoSlicer.slice`` path share one code
path and produce identical partitions.  On top of the legacy slicer it
keeps the split tree with exact (unrounded) thresholds, which is what lets
:meth:`assign` route *future* rows — acquired examples — into the
discovered slices.

The method is label-entropy driven and ignores the model entirely
(``fit(model=None, dataset)`` is fine), matching the appendix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.data import Dataset
from repro.slices.auto_slicer import AutoSlicer, label_entropy
from repro.slices.discovery import SliceDiscoveryMethod, register_discovery_method
from repro.utils.exceptions import ConfigurationError


@dataclass
class _Node:
    name: str
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    region: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@register_discovery_method(
    "auto",
    aliases=("auto_slicer", "entropy"),
    description="Appendix-A entropy-driven AutoSlicer on the discovery protocol",
)
class AutoSliceDiscovery(SliceDiscoveryMethod):
    """Label-entropy recursive slicing (Appendix A), discovery-protocol form."""

    @dataclass(frozen=True)
    class Config:
        max_depth: int = 3
        min_slice_size: int = 20
        entropy_threshold: float = 0.3
        n_thresholds: int = 8
        seed: int = 0

    def fit(self, model, dataset: Dataset, predictions=None):
        if len(dataset) == 0:
            raise ConfigurationError("cannot discover slices on an empty dataset")
        slicer = AutoSlicer(
            max_depth=self.config.max_depth,
            min_slice_size=self.config.min_slice_size,
            entropy_threshold=self.config.entropy_threshold,
            n_thresholds=self.config.n_thresholds,
        )
        # Mirror AutoSlicer.slice exactly (same frontier policy, same split
        # search via slicer._best_split, same names) while also recording
        # the split tree with exact thresholds for assign().
        root = _Node(name="root")
        frontier: list[tuple[_Node, Dataset, int]] = [(root, dataset, 0)]
        leaves: list[_Node] = []
        while frontier:
            node, node_dataset, depth = frontier.pop()
            should_split = (
                depth < slicer.max_depth
                and label_entropy(node_dataset) > slicer.entropy_threshold
                and len(node_dataset) >= 2 * slicer.min_slice_size
            )
            split = slicer._best_split(node_dataset) if should_split else None
            if split is None:
                node.region = len(leaves)
                leaves.append(node)
                continue
            feature, threshold, left_idx, right_idx = split
            node.feature = feature
            node.threshold = threshold
            node.left = _Node(name=f"{node.name}/x{feature}<={threshold:.3f}")
            node.right = _Node(name=f"{node.name}/x{feature}>{threshold:.3f}")
            frontier.append((node.left, node_dataset.subset(left_idx), depth + 1))
            frontier.append((node.right, node_dataset.subset(right_idx), depth + 1))
        self._root = root
        self._leaves = leaves
        return self._mark_fitted()

    def _assign_regions(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        out = np.zeros(len(features), dtype=np.int64)
        self._route(self._root, np.arange(len(features)), features, out)
        return out

    def _route(
        self, node: _Node, rows: np.ndarray, features: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[rows] = node.region
            return
        mask = features[rows, node.feature] <= node.threshold
        self._route(node.left, rows[mask], features, out)
        self._route(node.right, rows[~mask], features, out)

    def _region_names(self) -> list[str]:
        return [leaf.name for leaf in self._leaves]

    def _boundary_payload(self) -> object:
        def serialize(node: _Node) -> dict:
            if node.is_leaf:
                return {"region": node.region, "name": node.name}
            return {
                "feature": node.feature,
                "threshold": node.threshold,
                "left": serialize(node.left),
                "right": serialize(node.right),
            }

        return serialize(self._root)
