"""Built-in slice discovery methods.

Importing this package registers every built-in method with the registry in
:mod:`repro.slices.discovery` (the registry also imports these modules
lazily on first lookup, so ``get_discovery_method("kmeans")`` works without
an explicit import).

* :mod:`~repro.slices.methods.stump` — ``"stump"``: error-driven
  feature-threshold rule induction.
* :mod:`~repro.slices.methods.kmeans` — ``"kmeans"``: error-aware k-means
  in feature space.
* :mod:`~repro.slices.methods.auto` — ``"auto"``: the Appendix-A
  :class:`~repro.slices.auto_slicer.AutoSlicer` on the discovery protocol.
"""

from repro.slices.methods.auto import AutoSliceDiscovery
from repro.slices.methods.kmeans import ErrorKMeansDiscovery
from repro.slices.methods.stump import ErrorStumpDiscovery

__all__ = [
    "AutoSliceDiscovery",
    "ErrorKMeansDiscovery",
    "ErrorStumpDiscovery",
]
