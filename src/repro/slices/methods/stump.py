"""Error-driven feature-threshold rule induction (``"stump"``).

Grows a small decision tree of axis-aligned stumps over the
*misclassification indicator*: starting from the whole dataset, the leaf
carrying the most misclassified examples is repeatedly split on the
(feature, threshold) pair that most reduces the binary entropy of the
error indicator, until ``max_slices`` leaves exist or no split helps.  The
leaves are regions where the model's error behaviour is homogeneous —
exactly the slices worth tuning acquisition for.

The search is fully deterministic: candidate thresholds are feature
quantiles, ties keep the first candidate in (feature, threshold) order, and
no random numbers are drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.data import Dataset
from repro.slices.discovery import SliceDiscoveryMethod, register_discovery_method
from repro.utils.exceptions import ConfigurationError


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return float(-p * np.log(p) - (1.0 - p) * np.log(1.0 - p))


@dataclass
class _Node:
    name: str
    depth: int
    order: int
    indices: np.ndarray | None = None
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    region: int = -1
    splittable: bool = field(default=True)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@register_discovery_method(
    "stump",
    aliases=("error_stump", "rules"),
    description="error-driven rule induction (stumps over misclassifications)",
)
class ErrorStumpDiscovery(SliceDiscoveryMethod):
    """Decision stumps over the misclassification indicator."""

    @dataclass(frozen=True)
    class Config:
        max_slices: int = 4
        min_slice_size: int = 30
        n_thresholds: int = 8
        seed: int = 0

        def __post_init__(self) -> None:
            if self.max_slices < 1:
                raise ConfigurationError(
                    f"max_slices must be >= 1, got {self.max_slices}"
                )
            if self.min_slice_size < 1:
                raise ConfigurationError(
                    f"min_slice_size must be >= 1, got {self.min_slice_size}"
                )
            if self.n_thresholds < 1:
                raise ConfigurationError(
                    f"n_thresholds must be >= 1, got {self.n_thresholds}"
                )

    def fit(self, model, dataset: Dataset, predictions=None):
        if len(dataset) == 0:
            raise ConfigurationError("cannot discover slices on an empty dataset")
        if predictions is None:
            if model is None:
                raise ConfigurationError(
                    "stump discovery needs a model or precomputed predictions"
                )
            predictions = model.predict(dataset.features)
        predictions = np.asarray(predictions)
        if predictions.shape != dataset.labels.shape:
            raise ConfigurationError(
                f"predictions shape {predictions.shape} does not match "
                f"labels shape {dataset.labels.shape}"
            )
        errors = (predictions != dataset.labels).astype(np.float64)
        features = dataset.features

        root = _Node(name="root", depth=0, order=0, indices=np.arange(len(dataset)))
        leaves = [root]
        next_order = 1
        while len(leaves) < self.config.max_slices:
            # Split the splittable leaf carrying the most misclassified
            # examples; ties break toward the earliest-created leaf.
            candidates = [leaf for leaf in leaves if leaf.splittable]
            if not candidates:
                break
            candidates.sort(key=lambda leaf: (-errors[leaf.indices].sum(), leaf.order))
            leaf = candidates[0]
            split = self._best_split(features, errors, leaf.indices)
            if split is None:
                leaf.splittable = False
                continue
            feature, threshold, left_rows, right_rows = split
            leaf.feature = feature
            leaf.threshold = threshold
            leaf.left = _Node(
                name=f"{leaf.name}/x{feature}<={threshold:.3f}",
                depth=leaf.depth + 1,
                order=next_order,
                indices=leaf.indices[left_rows],
            )
            leaf.right = _Node(
                name=f"{leaf.name}/x{feature}>{threshold:.3f}",
                depth=leaf.depth + 1,
                order=next_order + 1,
                indices=leaf.indices[right_rows],
            )
            next_order += 2
            leaves.remove(leaf)
            leaves.extend([leaf.left, leaf.right])

        # Number the leaves by a left-first depth-first walk so region ids
        # are independent of the growth order above.
        self._root = root
        self._leaves: list[_Node] = []
        self._number_leaves(root)
        for node in self._walk(root):
            node.indices = None  # fitted trees do not pin the training data
        return self._mark_fitted()

    def _best_split(
        self, features: np.ndarray, errors: np.ndarray, indices: np.ndarray
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        min_size = self.config.min_slice_size
        n = len(indices)
        if n < 2 * min_size:
            return None
        parent = _binary_entropy(float(errors[indices].mean()))
        if parent <= 0.0:
            return None
        best: tuple[float, int, float, np.ndarray, np.ndarray] | None = None
        quantiles = np.append(
            np.linspace(0.1, 0.9, self.config.n_thresholds), 0.5
        )
        for feature in range(features.shape[1]):
            column = features[indices, feature]
            for threshold in np.unique(np.quantile(column, quantiles)):
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = n - n_left
                if n_left < min_size or n_right < min_size:
                    continue
                left_rate = float(errors[indices[left_mask]].mean())
                right_rate = float(errors[indices[~left_mask]].mean())
                children = (
                    n_left * _binary_entropy(left_rate)
                    + n_right * _binary_entropy(right_rate)
                ) / n
                gain = parent - children
                if gain <= 1e-9:
                    continue
                if best is None or gain > best[0]:
                    best = (
                        gain,
                        feature,
                        float(threshold),
                        np.nonzero(left_mask)[0],
                        np.nonzero(~left_mask)[0],
                    )
        if best is None:
            return None
        _, feature, threshold, left_rows, right_rows = best
        return feature, threshold, left_rows, right_rows

    # -- tree plumbing ---------------------------------------------------------
    def _number_leaves(self, node: _Node) -> None:
        if node.is_leaf:
            node.region = len(self._leaves)
            self._leaves.append(node)
            return
        self._number_leaves(node.left)
        self._number_leaves(node.right)

    def _walk(self, node: _Node):
        yield node
        if not node.is_leaf:
            yield from self._walk(node.left)
            yield from self._walk(node.right)

    def _assign_regions(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        out = np.zeros(len(features), dtype=np.int64)
        self._route(self._root, np.arange(len(features)), features, out)
        return out

    def _route(
        self, node: _Node, rows: np.ndarray, features: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[rows] = node.region
            return
        mask = features[rows, node.feature] <= node.threshold
        self._route(node.left, rows[mask], features, out)
        self._route(node.right, rows[~mask], features, out)

    def _region_names(self) -> list[str]:
        return [leaf.name for leaf in self._leaves]

    def _boundary_payload(self) -> object:
        def serialize(node: _Node) -> dict:
            if node.is_leaf:
                return {"region": node.region, "name": node.name}
            return {
                "feature": node.feature,
                "threshold": node.threshold,
                "left": serialize(node.left),
                "right": serialize(node.right),
            }

        return serialize(self._root)
