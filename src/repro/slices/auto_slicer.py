"""Automatic slicing (Appendix A of the paper).

The paper sketches a decision-tree style procedure: starting from the whole
dataset, iteratively split slices that are *biased* — i.e. whose examples are
heterogeneous enough that acquiring one example is not interchangeable with
acquiring another — until every leaf slice is acceptably unbiased or a depth
or size limit is hit.

Bias is measured here with the label-entropy of a candidate slice combined
with the variance reduction of the best feature split, which follows the
appendix's suggestion of an "entropy-based measure" and standard decision
tree practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.data import Dataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int


def label_entropy(dataset: Dataset) -> float:
    """Shannon entropy (nats) of the label distribution of ``dataset``."""
    if len(dataset) == 0:
        return 0.0
    counts = np.bincount(dataset.labels)
    probabilities = counts[counts > 0] / counts.sum()
    return float(-np.sum(probabilities * np.log(probabilities)))


@dataclass
class SliceCandidate:
    """A (possibly internal) node of the automatic slicing tree.

    Attributes
    ----------
    name:
        Path-style name encoding the splits that produced the slice, e.g.
        ``"root/x3<=0.52/x1>1.10"``.
    dataset:
        The examples belonging to this node.
    depth:
        Number of splits applied to reach this node.
    entropy:
        Label entropy of the node, the bias proxy.
    """

    name: str
    dataset: Dataset
    depth: int
    entropy: float = field(init=False)

    def __post_init__(self) -> None:
        self.entropy = label_entropy(self.dataset)


class AutoSlicer:
    """Entropy-driven recursive slicer.

    Parameters
    ----------
    max_depth:
        Maximum number of splits along any path.
    min_slice_size:
        Do not split a node whose children would fall below this size; this
        implements the appendix's warning against slices that are "not
        biased, but too small".
    entropy_threshold:
        Nodes whose label entropy is at or below this value are considered
        unbiased and are not split further.
    n_thresholds:
        Number of candidate split thresholds evaluated per feature.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_slice_size: int = 20,
        entropy_threshold: float = 0.3,
        n_thresholds: int = 8,
    ) -> None:
        self.max_depth = check_positive_int(max_depth, "max_depth")
        self.min_slice_size = check_positive_int(min_slice_size, "min_slice_size")
        if entropy_threshold < 0:
            raise ConfigurationError(
                f"entropy_threshold must be >= 0, got {entropy_threshold}"
            )
        self.entropy_threshold = float(entropy_threshold)
        self.n_thresholds = check_positive_int(n_thresholds, "n_thresholds")

    # -- splitting ------------------------------------------------------------
    def _best_split(
        self, dataset: Dataset
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Find the (feature, threshold) split with the largest entropy drop.

        Returns ``None`` when no split produces two children of at least
        ``min_slice_size`` examples or no split reduces entropy.
        """
        parent_entropy = label_entropy(dataset)
        best: tuple[float, int, float, np.ndarray, np.ndarray] | None = None
        n = len(dataset)
        for feature in range(dataset.n_features):
            column = dataset.features[:, feature]
            # Candidate cut points: evenly spaced quantiles plus the median,
            # so a clean 50/50 split (common for bimodal features) is always
            # among the candidates.
            quantiles = np.append(np.linspace(0.1, 0.9, self.n_thresholds), 0.5)
            for threshold in np.unique(np.quantile(column, quantiles)):
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                n_right = n - n_left
                if n_left < self.min_slice_size or n_right < self.min_slice_size:
                    continue
                left = dataset.subset(np.nonzero(left_mask)[0])
                right = dataset.subset(np.nonzero(~left_mask)[0])
                children_entropy = (
                    n_left * label_entropy(left) + n_right * label_entropy(right)
                ) / n
                gain = parent_entropy - children_entropy
                if gain <= 1e-9:
                    continue
                if best is None or gain > best[0]:
                    best = (
                        gain,
                        feature,
                        float(threshold),
                        np.nonzero(left_mask)[0],
                        np.nonzero(~left_mask)[0],
                    )
        if best is None:
            return None
        _, feature, threshold, left_idx, right_idx = best
        return feature, threshold, left_idx, right_idx

    def slice(self, dataset: Dataset) -> list[SliceCandidate]:
        """Partition ``dataset`` into unbiased slices.

        Returns the leaf :class:`SliceCandidate` nodes; their datasets form a
        partition of ``dataset``.
        """
        if len(dataset) == 0:
            raise ConfigurationError("cannot slice an empty dataset")
        root = SliceCandidate(name="root", dataset=dataset, depth=0)
        frontier = [root]
        leaves: list[SliceCandidate] = []
        while frontier:
            node = frontier.pop()
            should_split = (
                node.depth < self.max_depth
                and node.entropy > self.entropy_threshold
                and len(node.dataset) >= 2 * self.min_slice_size
            )
            split = self._best_split(node.dataset) if should_split else None
            if split is None:
                leaves.append(node)
                continue
            feature, threshold, left_idx, right_idx = split
            frontier.append(
                SliceCandidate(
                    name=f"{node.name}/x{feature}<={threshold:.3f}",
                    dataset=node.dataset.subset(left_idx),
                    depth=node.depth + 1,
                )
            )
            frontier.append(
                SliceCandidate(
                    name=f"{node.name}/x{feature}>{threshold:.3f}",
                    dataset=node.dataset.subset(right_idx),
                    depth=node.depth + 1,
                )
            )
        return leaves

    def slice_as_mapping(self, dataset: Dataset) -> dict[str, Dataset]:
        """Like :meth:`slice`, but returns ``{name: dataset}``."""
        return {leaf.name: leaf.dataset for leaf in self.slice(dataset)}
