"""Slice definitions.

A :class:`SliceSpec` names a slice and records its per-example acquisition
cost (the paper's :math:`C(s)`).  A :class:`Slice` couples a spec with the
slice's current training data and its fixed validation data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ml.data import Dataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SliceSpec:
    """Static description of a slice.

    Attributes
    ----------
    name:
        Unique, human-readable identifier, e.g. ``"White_Female"`` or
        ``"label=Sandal"``.
    cost:
        Cost of acquiring one example for this slice.  The paper assumes the
        cost is constant within a batch; it defaults to ``1.0``.
    description:
        Optional free-form description (e.g. the defining predicate).
    """

    name: str
    cost: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a slice must have a non-empty name")
        check_positive(self.cost, f"cost of slice {self.name!r}")

    def with_cost(self, cost: float) -> "SliceSpec":
        """Return a copy of this spec with a different acquisition cost."""
        return replace(self, cost=cost)


@dataclass
class Slice:
    """A slice's spec together with its current train and validation data.

    Attributes
    ----------
    spec:
        The static slice description.
    train:
        Training examples currently available for the slice.  Grows as data
        is acquired.
    validation:
        Held-out examples used to evaluate per-slice loss.  The paper assumes
        a validation set "large enough to evaluate models" per slice; it is
        never modified by acquisition.
    """

    spec: SliceSpec
    train: Dataset
    validation: Dataset
    acquired: int = field(default=0)

    def __post_init__(self) -> None:
        if self.train.n_features != self.validation.n_features:
            raise ConfigurationError(
                f"slice {self.spec.name!r}: train and validation feature widths "
                f"differ ({self.train.n_features} != {self.validation.n_features})"
            )

    @property
    def name(self) -> str:
        """The slice's name (shortcut for ``spec.name``)."""
        return self.spec.name

    @property
    def cost(self) -> float:
        """Per-example acquisition cost (shortcut for ``spec.cost``)."""
        return self.spec.cost

    @property
    def size(self) -> int:
        """Current number of training examples in the slice."""
        return len(self.train)

    def add_examples(self, examples: Dataset) -> None:
        """Append newly acquired ``examples`` to the slice's training data."""
        if len(examples) == 0:
            return
        if examples.n_features != self.train.n_features:
            raise ConfigurationError(
                f"slice {self.spec.name!r}: acquired examples have "
                f"{examples.n_features} features but the slice has "
                f"{self.train.n_features}"
            )
        self.train = Dataset.concatenate([self.train, examples])
        self.acquired += len(examples)

    def copy(self) -> "Slice":
        """Return a shallow copy (datasets are immutable so sharing is safe)."""
        return Slice(
            spec=self.spec,
            train=self.train,
            validation=self.validation,
            acquired=self.acquired,
        )
