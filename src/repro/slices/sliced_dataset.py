"""The :class:`SlicedDataset` container.

This is the object the Slice Tuner core manipulates: an ordered collection of
named slices with their training data, validation data, and acquisition
costs.  It offers the combined views needed for model training (union of all
train data), the per-slice views needed for evaluation, and mutation through
``add_examples`` as acquisition proceeds.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.slices.slice import Slice, SliceSpec
from repro.utils.exceptions import ConfigurationError, SlicingError
from repro.utils.rng import RandomState, as_generator


class SlicedDataset:
    """An ordered, named collection of slices forming one training problem.

    Parameters
    ----------
    slices:
        The slices, in a stable order.  Slice names must be unique and all
        slices must share the same feature width.
    n_classes:
        Total number of classes in the underlying task.  Passed explicitly
        because an individual slice (e.g. one per label) may only contain a
        subset of the classes.
    """

    def __init__(self, slices: Sequence[Slice], n_classes: int) -> None:
        slices = list(slices)
        if not slices:
            raise SlicingError("a SlicedDataset needs at least one slice")
        names = [s.name for s in slices]
        if len(set(names)) != len(names):
            raise SlicingError(f"slice names must be unique, got {names}")
        widths = {s.train.n_features for s in slices}
        if len(widths) > 1:
            raise SlicingError(
                f"slices disagree on feature width: {sorted(widths)}"
            )
        if n_classes <= 0:
            raise ConfigurationError(f"n_classes must be positive, got {n_classes}")
        self._slices: dict[str, Slice] = {s.name: s for s in slices}
        self._order: list[str] = names
        self.n_classes = int(n_classes)

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_datasets(
        cls,
        train_by_slice: Mapping[str, Dataset],
        validation_by_slice: Mapping[str, Dataset],
        n_classes: int,
        costs: Mapping[str, float] | None = None,
    ) -> "SlicedDataset":
        """Build a SlicedDataset from per-slice train/validation mappings."""
        if set(train_by_slice) != set(validation_by_slice):
            raise SlicingError(
                "train and validation mappings must cover the same slice names"
            )
        costs = dict(costs or {})
        slices = []
        for name in train_by_slice:
            spec = SliceSpec(name=name, cost=float(costs.get(name, 1.0)))
            slices.append(
                Slice(
                    spec=spec,
                    train=train_by_slice[name],
                    validation=validation_by_slice[name],
                )
            )
        return cls(slices, n_classes=n_classes)

    # -- basic introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Slice]:
        return (self._slices[name] for name in self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._slices

    def __getitem__(self, name: str) -> Slice:
        try:
            return self._slices[name]
        except KeyError:
            raise SlicingError(f"unknown slice {name!r}") from None

    @property
    def names(self) -> list[str]:
        """Slice names in their stable order."""
        return list(self._order)

    @property
    def n_features(self) -> int:
        """Feature width shared by all slices."""
        return self._slices[self._order[0]].train.n_features

    def sizes(self) -> np.ndarray:
        """Current training sizes per slice (ordered like :attr:`names`)."""
        return np.array([self._slices[n].size for n in self._order], dtype=np.int64)

    def costs(self) -> np.ndarray:
        """Per-example acquisition costs per slice (ordered like :attr:`names`)."""
        return np.array([self._slices[n].cost for n in self._order], dtype=np.float64)

    def acquired_counts(self) -> np.ndarray:
        """Total examples acquired so far per slice."""
        return np.array(
            [self._slices[n].acquired for n in self._order], dtype=np.int64
        )

    # -- combined views ----------------------------------------------------------
    def combined_train(self) -> Dataset:
        """Union of all slices' training data."""
        non_empty = [s.train for s in self if len(s.train) > 0]
        if not non_empty:
            return Dataset.empty(self.n_features)
        return Dataset.concatenate(non_empty)

    def combined_validation(self) -> Dataset:
        """Union of all slices' validation data."""
        non_empty = [s.validation for s in self if len(s.validation) > 0]
        if not non_empty:
            return Dataset.empty(self.n_features)
        return Dataset.concatenate(non_empty)

    def validation_by_slice(self) -> dict[str, Dataset]:
        """Mapping from slice name to its validation dataset."""
        return {name: self._slices[name].validation for name in self._order}

    def train_by_slice(self) -> dict[str, Dataset]:
        """Mapping from slice name to its current training dataset."""
        return {name: self._slices[name].train for name in self._order}

    def subset_train(
        self,
        fraction: float | None = None,
        sizes: Mapping[str, int] | None = None,
        random_state: RandomState = None,
    ) -> Dataset:
        """Union of random subsets of each slice's training data.

        This implements the paper's efficient (amortized) learning-curve
        protocol: take X% subsets of *all* slices and train a single model.

        Parameters
        ----------
        fraction:
            Fraction of each slice to keep (mutually exclusive with
            ``sizes``).
        sizes:
            Explicit number of examples to keep per slice name.
        random_state:
            Seed or generator for the subsampling.
        """
        if (fraction is None) == (sizes is None):
            raise ConfigurationError(
                "exactly one of fraction or sizes must be provided"
            )
        rng = as_generator(random_state)
        parts = []
        for name in self._order:
            slice_ = self._slices[name]
            if fraction is not None:
                target = int(round(len(slice_.train) * float(fraction)))
            else:
                target = int(sizes.get(name, len(slice_.train)))
            sample = slice_.train.sample(target, random_state=rng)
            if len(sample) > 0:
                parts.append(sample)
        if not parts:
            return Dataset.empty(self.n_features)
        return Dataset.concatenate(parts)

    # -- mutation ------------------------------------------------------------------
    def add_examples(self, name: str, examples: Dataset) -> None:
        """Append acquired ``examples`` to the named slice's training data."""
        self[name].add_examples(examples)

    def copy(self) -> "SlicedDataset":
        """Deep-enough copy: slices are copied, underlying arrays are shared."""
        return SlicedDataset(
            [self._slices[name].copy() for name in self._order],
            n_classes=self.n_classes,
        )

    # -- convenience ----------------------------------------------------------------
    def imbalance_ratio(self) -> float:
        """Ratio of the largest to the smallest slice size (paper Section 5.2)."""
        sizes = self.sizes()
        smallest = sizes.min()
        if smallest <= 0:
            return float("inf")
        return float(sizes.max() / smallest)

    def summary(self) -> list[dict[str, object]]:
        """One summary record per slice (name, size, acquired, cost)."""
        return [
            {
                "name": s.name,
                "size": s.size,
                "acquired": s.acquired,
                "cost": s.cost,
                "validation_size": len(s.validation),
            }
            for s in self
        ]
