"""Partition validation and imbalance utilities."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.ml.data import Dataset
from repro.utils.exceptions import ConfigurationError, SlicingError


def check_partition(
    dataset: Dataset, slices: Mapping[str, Dataset] | Sequence[Dataset]
) -> None:
    """Verify that ``slices`` together have exactly the rows of ``dataset``.

    The check is structural (total row count and per-class counts match); it
    does not compare individual rows, which keeps it cheap for large data.
    Raises :class:`~repro.utils.exceptions.SlicingError` on mismatch.
    """
    parts = list(slices.values()) if isinstance(slices, Mapping) else list(slices)
    total = sum(len(p) for p in parts)
    if total != len(dataset):
        raise SlicingError(
            f"slices contain {total} examples but the dataset has {len(dataset)}"
        )
    n_classes = max([dataset.n_classes] + [p.n_classes for p in parts if len(p) > 0])
    combined_counts = np.zeros(n_classes, dtype=np.int64)
    for part in parts:
        combined_counts += part.class_counts(n_classes)
    if not np.array_equal(combined_counts, dataset.class_counts(n_classes)):
        raise SlicingError(
            "per-class example counts of the slices do not match the dataset"
        )


def check_discovered_partition(
    dataset: Dataset, assignments: Mapping[str, np.ndarray]
) -> None:
    """Verify that discovered slices partition ``dataset`` exactly.

    ``assignments`` maps each discovered slice name to the row indices of
    ``dataset`` it claims.  Unlike :func:`check_partition` (structural
    counts), this is an exact index-level check: every row must be claimed
    by exactly one slice — no overlap, full coverage, no out-of-range
    indices.  Raises :class:`~repro.utils.exceptions.ConfigurationError`
    with the offending slices named, instead of letting a bad discovery
    split silently corrupt a run.
    """
    if not assignments:
        raise ConfigurationError("discovered partition has no slices")
    n = len(dataset)
    claimed = np.zeros(n, dtype=np.int64)
    for name, indices in assignments.items():
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ConfigurationError(
                f"discovered slice {name!r} references rows outside the "
                f"dataset (valid range 0..{n - 1})"
            )
        if indices.size != np.unique(indices).size:
            raise ConfigurationError(
                f"discovered slice {name!r} claims the same row twice"
            )
        claimed[indices] += 1
    overlapping = int(np.count_nonzero(claimed > 1))
    if overlapping:
        raise ConfigurationError(
            f"discovered slices overlap: {overlapping} rows are claimed by "
            "more than one slice"
        )
    uncovered = int(np.count_nonzero(claimed == 0))
    if uncovered:
        raise ConfigurationError(
            f"discovered slices do not cover the dataset: {uncovered} rows "
            "belong to no slice"
        )


def imbalance_ratio(sizes: Sequence[int] | np.ndarray) -> float:
    """Imbalance ratio: ``max(sizes) / min(sizes)`` (paper Section 5.2).

    Returns ``inf`` when any size is zero; raises if ``sizes`` is empty or
    contains negative values.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if sizes.size == 0:
        raise SlicingError("imbalance ratio of zero slices is undefined")
    if np.any(sizes < 0):
        raise SlicingError("slice sizes must be non-negative")
    smallest = sizes.min()
    if smallest == 0:
        return float("inf")
    return float(sizes.max() / smallest)


def size_entropy(sizes: Sequence[int] | np.ndarray) -> float:
    """Shannon entropy (nats) of the slice-size distribution.

    Used by the automatic slicer as a bias measure: a perfectly balanced
    partition has maximal entropy ``log(n_slices)``.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    total = sizes.sum()
    if total <= 0:
        return 0.0
    probabilities = sizes[sizes > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))
