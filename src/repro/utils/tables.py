"""Plain-text rendering of tables and series.

The benchmark harness regenerates every table and figure of the paper as
text.  Tables are rendered with aligned columns; figures (line series) are
rendered as ``x -> y`` listings per series so the shape is inspectable in a
terminal or a log file.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have one entry per header.  Floats are
        formatted with four decimal places.
    title:
        Optional title printed above the table.
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render named ``(x, y)`` series, one block per series.

    This is the text analogue of a line plot: the reader can see where each
    curve starts, how fast it falls, and where curves cross.
    """
    lines = []
    if title:
        lines.append(title)
    for name, points in series.items():
        lines.append(f"[{name}]  ({x_label} -> {y_label})")
        for x, y in points:
            lines.append(f"  {_stringify(float(x))} -> {_stringify(float(y))}")
    return "\n".join(lines)
