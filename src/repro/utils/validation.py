"""Input-validation helpers shared across the library.

Each helper raises :class:`repro.utils.exceptions.ConfigurationError` with a
message that names the offending parameter, so user mistakes surface at the
API boundary instead of deep inside the optimizer.
"""

from __future__ import annotations

from typing import Sized

import numpy as np

from repro.utils.exceptions import ConfigurationError


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is strictly positive and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is zero or positive and return it as a float."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(
            f"{name} must be a non-negative finite number, got {value}"
        )
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Ensure ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not np.isfinite(value) or not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ConfigurationError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_length_match(a: Sized, b: Sized, name_a: str, name_b: str) -> None:
    """Ensure two sized collections have the same length."""
    if len(a) != len(b):
        raise ConfigurationError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def check_positive_int(value: int, name: str) -> int:
    """Ensure ``value`` is a strictly positive integer and return it."""
    if int(value) != value or int(value) <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Ensure ``value`` is a non-negative integer and return it."""
    if int(value) != value or int(value) < 0:
        raise ConfigurationError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    return int(value)
