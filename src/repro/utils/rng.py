"""Randomness helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  The helpers
here normalize those inputs so components never share mutable generator state
by accident, which keeps experiments reproducible trial-by-trial.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: The type accepted anywhere the library needs randomness.
RandomState = Union[None, int, np.random.Generator]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed for a deterministic
        generator, or an existing generator which is returned unchanged.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(random_state: RandomState, count: int) -> list[int]:
    """Draw ``count`` independent child seeds from ``random_state``.

    This is the "pre-spawn seeds up-front" primitive behind deterministic
    parallelism: the parent RNG is consumed once, in one place, and the
    resulting integer seeds can be shipped to any executor backend (or
    process) without sharing generator state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = as_generator(random_state)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(seed) for seed in seeds]


def spawn_generators(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``random_state``.

    The children are statistically independent streams, so parallel or
    repeated model trainings never reuse the same random numbers.
    """
    return [np.random.default_rng(seed) for seed in spawn_seeds(random_state, count)]


def shuffled_indices(
    n: int, random_state: RandomState = None
) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    rng = as_generator(random_state)
    return rng.permutation(n)


def sample_without_replacement(
    n: int, size: int, random_state: RandomState = None
) -> np.ndarray:
    """Sample ``size`` distinct indices out of ``range(n)``.

    Raises ``ValueError`` if ``size`` exceeds ``n``.
    """
    if size > n:
        raise ValueError(f"cannot sample {size} items from a population of {n}")
    rng = as_generator(random_state)
    return rng.choice(n, size=size, replace=False)
