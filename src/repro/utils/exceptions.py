"""Exception hierarchy for the Slice Tuner reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses indicate which subsystem
rejected the input or failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include a negative budget, a ``lambda`` weight below zero, or an
    unknown strategy name.
    """


class SlicingError(ReproError):
    """Raised when slices do not form a valid partition of the dataset."""


class FittingError(ReproError):
    """Raised when a learning curve cannot be fitted.

    This typically means there were fewer than two distinct sample sizes, or
    the optimizer failed to converge even after fallback attempts.
    """


class OptimizationError(ReproError):
    """Raised when the selective data acquisition optimization fails."""


class BudgetError(ReproError):
    """Raised when a budget constraint is violated or exhausted unexpectedly."""


class AcquisitionError(ReproError):
    """Raised when a data source cannot satisfy an acquisition request."""


class CampaignError(ReproError):
    """Raised when a campaign cannot be created, restored, or resumed.

    Examples include resuming an unknown campaign id, scheduling the same
    campaign twice, or loading a snapshot written by an incompatible
    version of the campaign subsystem.
    """


class ServeError(ReproError):
    """Raised when the tuner service (or its client) cannot complete a call.

    Examples include a daemon that is not reachable, an HTTP error response
    from the campaign API, or a malformed server-sent-event stream.  The
    server maps library errors onto HTTP statuses; the client maps them
    back onto this exception so CLI exit codes stay consistent.
    """


class AnalyticsError(ReproError):
    """Raised when an analytics view, report, or consistency check fails.

    Examples include requesting an unknown report kind, filtering a global
    view by campaign, or — most importantly — a SQL view disagreeing with
    its pure-Python reference implementation during ``cli report --verify``.
    """
