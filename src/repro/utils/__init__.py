"""Shared utilities: randomness, validation helpers, text rendering.

These helpers are deliberately small and dependency-free so every other
subpackage (ml substrate, curves, core optimizer, experiments) can rely on
them without circular imports.
"""

from repro.utils.exceptions import (
    BudgetError,
    ConfigurationError,
    FittingError,
    OptimizationError,
    ReproError,
    SlicingError,
)
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_in_range,
    check_length_match,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SlicingError",
    "FittingError",
    "OptimizationError",
    "BudgetError",
    "RandomState",
    "as_generator",
    "spawn_generators",
    "format_table",
    "format_series",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_length_match",
]
