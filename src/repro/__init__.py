"""Slice Tuner: selective data acquisition for accurate and fair ML models.

A from-scratch reproduction of Tae & Whang, "Slice Tuner: A Selective Data
Acquisition Framework for Accurate and Fair Machine Learning Models"
(SIGMOD 2021), including every substrate the paper depends on: a NumPy
machine-learning stack, synthetic stand-ins for the paper's four datasets, an
acquisition/crowdsourcing simulator, learning-curve estimation, and the
selective data acquisition optimization itself.

Quickstart
----------
Every acquisition policy — the paper's One-shot and Iterative variants, the
allocation baselines, and the rotting-bandit comparator — is a registered
strategy; pick one by name::

    from repro import SliceTuner, available_strategies, fashion_like_task
    from repro import GeneratorDataSource

    print(available_strategies())
    # ('aggressive', 'bandit', 'conservative', 'moderate', 'oneshot',
    #  'proportional', 'uniform', 'water_filling')

    task = fashion_like_task()
    sliced = task.initial_sliced_dataset(initial_sizes=200, random_state=0)
    source = GeneratorDataSource(task, random_state=1)

    tuner = SliceTuner(sliced, source, random_state=2)
    result = tuner.run(budget=2000, method="moderate", lam=1.0)
    print(result.acquisitions_table())
    print(result.final_report.to_text())

Acquisition itself is a routed, batch-oriented service: sources are *named
providers* (``available_sources()`` lists the registry — ``generator``,
``pool``, ``crowdsourcing``, plus the ``composite`` failover and
``throttled`` rate-limit decorators), and a tuner can route every request
across a provider table with failover::

    pool_first = SliceTuner(
        sliced,
        sources={"pool": pool_source, "generator": source},  # priority order
        random_state=2,
    )

For step-wise control, stream the same run through a
:class:`~repro.core.session.TunerSession` — each acquisition batch is
yielded as it lands, with hooks, early stops, and checkpointing (and
``stream_events()`` additionally yields every
:class:`~repro.acquisition.requests.Fulfillment`: delivered counts,
shortfalls, and per-provider provenance)::

    session = tuner.session()
    session.add_early_stop(lambda record: record.imbalance_after < 1.5)
    for record in session.stream(budget=2000, strategy="aggressive"):
        print(f"iteration {record.iteration}: acquired {record.acquired}")
    result = session.result()
    checkpoint = session.state_dict()       # JSON-serializable
    print(result.to_json())                 # so is the result

For runs that must survive the process, wrap the session in a *campaign*:
a declarative :class:`~repro.campaigns.campaign.CampaignSpec` plus a
durable :class:`~repro.campaigns.store.CampaignStore` (in-memory or
stdlib-sqlite3 WAL) give crash-safe, byte-identical resume and idempotent
re-run detection, and a :class:`~repro.campaigns.scheduler.CampaignScheduler`
multiplexes many concurrent campaigns over one shared engine executor::

    store = SqliteStore("campaigns.sqlite")
    campaign = Campaign.start(store, CampaignSpec(name="nightly", budget=2000))
    campaign.run()                                  # kill -9 any time...
    Campaign.resume(store, campaign.campaign_id).run()   # ...and continue

To serve many clients from one long-running process, put the same store
behind the tuner service daemon (`python -m repro.cli serve`): a
stdlib-only HTTP JSON API over a shared background scheduler, streaming
live events over SSE, draining gracefully on SIGTERM::

    service = TunerService(store=SqliteStore("campaigns.sqlite")).start()
    server = TunerServer(service, port=8731).start_background()
    client = TunerClient(server.url)
    campaign_id = client.submit({"name": "nightly", "budget": 2000})["campaign_id"]
    for frame in client.tail(campaign_id):          # replay + live SSE
        print(frame["event"], frame["data"])

Registering a custom strategy
-----------------------------
A strategy answers one question — *what should the next acquisition batch
be?* — and the framework handles budgets, acquisition, records, and
evaluation.  Subclass :class:`~repro.core.strategy_api.AcquisitionStrategy`,
register it, and every entry point (``SliceTuner.run``, sessions, the CLI's
``--methods``/``strategies`` subcommands, the experiment runner) accepts it::

    from repro import AcquisitionPlan, AcquisitionStrategy, register_strategy

    @register_strategy("greedy_worst", description="all budget to the worst slice")
    class GreedyWorstSlice(AcquisitionStrategy):
        name = "greedy_worst"
        is_iterative = False            # one batch, like the baselines

        def propose(self, state, budget, lam):
            losses = state.slice_validation_losses()
            worst = max(losses, key=losses.get)
            count = int(budget // state.cost_model.cost(worst))
            return AcquisitionPlan(
                counts={worst: count},
                expected_cost=count * state.cost_model.cost(worst),
                solver=self.name,
            )

    result = tuner.run(budget=500, method="greedy_worst")

Iterative policies (``is_iterative = True``) are called repeatedly until the
budget runs dry; override ``observe(state, record)`` to digest each batch
(and return ``False`` to stop early), and ``state_dict``/``load_state_dict``
to participate in session checkpoints.

See ``examples/`` for runnable scripts and ``benchmarks/`` for the harness
that regenerates every table and figure of the paper's evaluation.
"""

from repro.analytics import (
    Analytics,
    REPORT_SCHEMA,
    assert_consistent,
    reference_rows,
)
from repro.acquisition import (
    AcquisitionRequest,
    AcquisitionRouter,
    AcquisitionService,
    BudgetLedger,
    CompositeSource,
    CrowdsourcingSimulator,
    EscalatingCost,
    Fulfillment,
    GeneratorDataSource,
    PoolDataSource,
    TableCost,
    ThrottledSource,
    UnitCost,
    WorkerPool,
    available_sources,
    get_source,
    register_source,
    source_descriptions,
)
from repro.bandit import BanditResult, RottingBanditAcquirer
from repro.campaigns import (
    Campaign,
    CampaignScheduler,
    CampaignSpec,
    CampaignStore,
    InMemoryStore,
    SqliteStore,
)
from repro.core import (
    AcquisitionPlan,
    AcquisitionStrategy,
    IterationRecord,
    IterativeAlgorithm,
    OneShotAlgorithm,
    SelectiveAcquisitionProblem,
    SliceTuner,
    SliceTunerConfig,
    TunerSession,
    TunerState,
    TuningResult,
    available_strategies,
    get_change_ratio,
    get_strategy,
    imbalance_ratio,
    optimize_allocation,
    proportional_allocation,
    register_strategy,
    strategy_descriptions,
    uniform_allocation,
    water_filling_allocation,
)
from repro.curves import (
    CurveEstimationConfig,
    FittedCurve,
    LearningCurveEstimator,
    PowerLawCurve,
    PowerLawWithFloor,
    fit_power_law,
)
from repro.engine import (
    CurveCache,
    Executor,
    InMemoryResultCache,
    MLPFactory,
    ProcessPoolExecutor,
    SerialExecutor,
    SqliteResultCache,
    TrainingJob,
    available_executors,
    get_executor,
)
from repro.datasets import (
    SliceBlueprint,
    SyntheticTask,
    adult_like_task,
    faces_like_task,
    fashion_like_task,
    mixed_like_task,
)
from repro.fairness import (
    FairnessReport,
    average_equalized_error_rates,
    evaluate_fairness,
    max_equalized_error_rates,
    unfairness,
)
from repro.ml import (
    Dataset,
    MLPClassifier,
    SoftmaxRegression,
    Trainer,
    TrainingConfig,
)
from repro.monitor import (
    Alert,
    AlertRule,
    CampaignMonitor,
    HealthEvaluator,
    alert_history,
    available_rules,
    get_rule,
    register_rule,
)
from repro.serve import TunerClient, TunerServer, TunerService
from repro.slices import (
    Slice,
    SliceDiscoveryMethod,
    SlicedDataset,
    SliceSpec,
    available_discovery_methods,
    get_discovery_method,
    register_discovery_method,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # core
    "SliceTuner",
    "SliceTunerConfig",
    "TunerSession",
    "TuningResult",
    "IterationRecord",
    "AcquisitionPlan",
    "OneShotAlgorithm",
    "IterativeAlgorithm",
    "SelectiveAcquisitionProblem",
    "optimize_allocation",
    "uniform_allocation",
    "water_filling_allocation",
    "proportional_allocation",
    "imbalance_ratio",
    "get_change_ratio",
    # strategy registry
    "AcquisitionStrategy",
    "TunerState",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_descriptions",
    # bandit
    "RottingBanditAcquirer",
    "BanditResult",
    # campaigns
    "Campaign",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStore",
    "InMemoryStore",
    "SqliteStore",
    # serve
    "TunerService",
    "TunerServer",
    "TunerClient",
    # analytics
    "Analytics",
    "REPORT_SCHEMA",
    "assert_consistent",
    "reference_rows",
    # curves
    "PowerLawCurve",
    "PowerLawWithFloor",
    "FittedCurve",
    "fit_power_law",
    "LearningCurveEstimator",
    "CurveEstimationConfig",
    # slices
    "Slice",
    "SliceSpec",
    "SlicedDataset",
    "SliceDiscoveryMethod",
    "register_discovery_method",
    "get_discovery_method",
    "available_discovery_methods",
    # ml
    "Dataset",
    "SoftmaxRegression",
    "MLPClassifier",
    "Trainer",
    "TrainingConfig",
    # fairness
    "FairnessReport",
    "evaluate_fairness",
    "unfairness",
    "average_equalized_error_rates",
    "max_equalized_error_rates",
    # datasets
    "SyntheticTask",
    "SliceBlueprint",
    "fashion_like_task",
    "mixed_like_task",
    "faces_like_task",
    "adult_like_task",
    # engine
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "TrainingJob",
    "InMemoryResultCache",
    "SqliteResultCache",
    "CurveCache",
    "MLPFactory",
    "get_executor",
    "available_executors",
    # acquisition
    "GeneratorDataSource",
    "PoolDataSource",
    "CompositeSource",
    "ThrottledSource",
    "AcquisitionRequest",
    "Fulfillment",
    "AcquisitionRouter",
    "AcquisitionService",
    "register_source",
    "get_source",
    "available_sources",
    "source_descriptions",
    "UnitCost",
    "TableCost",
    "EscalatingCost",
    "BudgetLedger",
    "WorkerPool",
    "CrowdsourcingSimulator",
    # monitoring
    "Alert",
    "AlertRule",
    "CampaignMonitor",
    "HealthEvaluator",
    "alert_history",
    "available_rules",
    "get_rule",
    "register_rule",
]
