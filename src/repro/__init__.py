"""Slice Tuner: selective data acquisition for accurate and fair ML models.

A from-scratch reproduction of Tae & Whang, "Slice Tuner: A Selective Data
Acquisition Framework for Accurate and Fair Machine Learning Models"
(SIGMOD 2021), including every substrate the paper depends on: a NumPy
machine-learning stack, synthetic stand-ins for the paper's four datasets, an
acquisition/crowdsourcing simulator, learning-curve estimation, and the
selective data acquisition optimization itself.

Quickstart::

    from repro import (
        SliceTuner, fashion_like_task, GeneratorDataSource,
    )

    task = fashion_like_task()
    sliced = task.initial_sliced_dataset(initial_sizes=200, random_state=0)
    source = GeneratorDataSource(task, random_state=1)

    tuner = SliceTuner(sliced, source, random_state=2)
    result = tuner.run(budget=2000, method="moderate", lam=1.0)
    print(result.acquisitions_table())
    print(result.final_report.to_text())

See ``examples/`` for runnable scripts and ``benchmarks/`` for the harness
that regenerates every table and figure of the paper's evaluation.
"""

from repro.acquisition import (
    BudgetLedger,
    CrowdsourcingSimulator,
    EscalatingCost,
    GeneratorDataSource,
    PoolDataSource,
    TableCost,
    UnitCost,
    WorkerPool,
)
from repro.core import (
    AcquisitionPlan,
    IterativeAlgorithm,
    OneShotAlgorithm,
    SelectiveAcquisitionProblem,
    SliceTuner,
    SliceTunerConfig,
    TuningResult,
    get_change_ratio,
    imbalance_ratio,
    optimize_allocation,
    proportional_allocation,
    uniform_allocation,
    water_filling_allocation,
)
from repro.curves import (
    CurveEstimationConfig,
    FittedCurve,
    LearningCurveEstimator,
    PowerLawCurve,
    PowerLawWithFloor,
    fit_power_law,
)
from repro.datasets import (
    SliceBlueprint,
    SyntheticTask,
    adult_like_task,
    faces_like_task,
    fashion_like_task,
    mixed_like_task,
)
from repro.fairness import (
    FairnessReport,
    average_equalized_error_rates,
    evaluate_fairness,
    max_equalized_error_rates,
    unfairness,
)
from repro.ml import (
    Dataset,
    MLPClassifier,
    SoftmaxRegression,
    Trainer,
    TrainingConfig,
)
from repro.slices import Slice, SlicedDataset, SliceSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SliceTuner",
    "SliceTunerConfig",
    "TuningResult",
    "AcquisitionPlan",
    "OneShotAlgorithm",
    "IterativeAlgorithm",
    "SelectiveAcquisitionProblem",
    "optimize_allocation",
    "uniform_allocation",
    "water_filling_allocation",
    "proportional_allocation",
    "imbalance_ratio",
    "get_change_ratio",
    # curves
    "PowerLawCurve",
    "PowerLawWithFloor",
    "FittedCurve",
    "fit_power_law",
    "LearningCurveEstimator",
    "CurveEstimationConfig",
    # slices
    "Slice",
    "SliceSpec",
    "SlicedDataset",
    # ml
    "Dataset",
    "SoftmaxRegression",
    "MLPClassifier",
    "Trainer",
    "TrainingConfig",
    # fairness
    "FairnessReport",
    "evaluate_fairness",
    "unfairness",
    "average_equalized_error_rates",
    "max_equalized_error_rates",
    # datasets
    "SyntheticTask",
    "SliceBlueprint",
    "fashion_like_task",
    "mixed_like_task",
    "faces_like_task",
    "adult_like_task",
    # acquisition
    "GeneratorDataSource",
    "PoolDataSource",
    "UnitCost",
    "TableCost",
    "EscalatingCost",
    "BudgetLedger",
    "WorkerPool",
    "CrowdsourcingSimulator",
]
