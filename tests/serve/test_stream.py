"""SSE semantics: framing round-trip and cursor-exact resume.

The satellite acceptance: disconnect mid-stream, reconnect with
``Last-Event-ID``, and the concatenation of everything received equals
``replay_events`` of the finished log — i.e. tailing over the wire (with
any number of drops) is indistinguishable from one in-process replay.
"""

from __future__ import annotations

import io

import pytest

from repro.serve import format_sse_event, parse_sse_stream
from repro.serve.stream import stream_campaign_events
from repro.utils.exceptions import ServeError

from tests.serve.conftest import event_keys, multi_spec, run_in_process, tiny_spec


def test_sse_format_parse_roundtrip():
    frames = (
        format_sse_event({"kind": "iteration", "n": 1}, event="iteration", event_id=7)
        + ": ping\n\n"
        + format_sse_event({"done": True}, event="end")
    )
    parsed = list(parse_sse_stream(io.BytesIO(frames.encode("utf-8"))))
    assert parsed == [
        {"event": "iteration", "id": 7, "data": {"kind": "iteration", "n": 1}},
        {"event": "end", "id": None, "data": {"done": True}},
    ]


def test_parse_rejects_malformed_frames():
    with pytest.raises(ServeError, match="malformed SSE data"):
        list(parse_sse_stream(io.BytesIO(b"data: {not json\n\n")))
    with pytest.raises(ServeError, match="malformed SSE id"):
        list(parse_sse_stream(io.BytesIO(b"id: seven\ndata: {}\n\n")))


def test_disconnect_reconnect_equals_replay(served):
    """The headline SSE guarantee, across a real socket."""
    _, _, client = served
    spec = multi_spec()
    _, baseline_events = run_in_process(spec)
    submitted = client.submit(spec)
    campaign_id = submitted["campaign_id"]

    received = []
    for frame in client.tail(campaign_id):
        if frame["id"] is not None:
            received.append(frame)
        if len(received) >= 2:
            break  # simulate a dropped connection mid-stream

    client.wait(campaign_id, timeout=180)

    # Reconnect from the cursor (client.tail resumes from last_event_id).
    for frame in client.tail(campaign_id):
        if frame["id"] is not None:
            assert frame["id"] > received[-1]["id"], "cursor replayed an event"
            received.append(frame)

    assert event_keys(received) == [
        (kind, iteration, payload)
        for kind, iteration, payload in baseline_events
    ]


def test_tail_from_cursor_skips_prefix(served):
    from repro.serve import TunerClient

    _, server, client = served
    spec = tiny_spec(name="cursor")
    submitted = client.submit(spec)
    client.wait(submitted["campaign_id"], timeout=120)
    full = [
        frame
        for frame in client.tail(submitted["campaign_id"], after=0)
        if frame["id"] is not None
    ]
    assert len(full) >= 2
    cursor = full[1]["id"]
    fresh_client = TunerClient(server.url, timeout=30.0)
    partial = [
        frame
        for frame in fresh_client.tail(submitted["campaign_id"], after=cursor)
        if frame["id"] is not None
    ]
    assert [frame["id"] for frame in partial] == [
        frame["id"] for frame in full if frame["id"] > cursor
    ]


def test_stream_generator_ends_with_status(service):
    """Driving the generator directly (no HTTP): end frame carries status."""
    submitted = service.submit(tiny_spec(name="direct"))
    frames = list(
        parse_sse_stream(
            io.BytesIO(
                "".join(
                    stream_campaign_events(service, submitted["campaign_id"])
                ).encode("utf-8")
            )
        )
    )
    assert frames[-1]["event"] == "end"
    assert frames[-1]["data"]["status"] == "completed"
    persisted = [frame for frame in frames if frame["id"] is not None]
    assert persisted[-1]["data"]["kind"] == "completed"
    assert frames[-1]["data"]["last_seq"] == persisted[-1]["id"]
