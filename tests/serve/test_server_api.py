"""HTTP API end-to-end: wire-served results equal in-process runs.

The acceptance criterion of the serve PR: a campaign submitted over HTTP
and observed through the JSON API yields a result and event log identical
to the same spec run in-process via ``Campaign.run``.  Also covers the
error-status mapping and the multi-client load path (concurrent clients
sharing one daemon).
"""

from __future__ import annotations

import threading

import pytest

from repro.serve import TunerClient
from repro.utils.exceptions import ServeError

from tests.serve.conftest import event_keys, run_in_process, tiny_spec


def test_submit_wait_result_matches_in_process(served):
    _, _, client = served
    spec = tiny_spec()
    baseline, baseline_events = run_in_process(spec)
    submitted = client.submit(spec)
    summary = client.wait(submitted["campaign_id"], timeout=120)
    assert summary["status"] == "completed"
    assert client.result(submitted["campaign_id"]) == baseline.to_dict()
    assert event_keys(client.log(submitted["campaign_id"])) == [
        (kind, iteration, payload)
        for kind, iteration, payload in baseline_events
    ]


def test_health_list_show_stats_roundtrip(served):
    _, _, client = served
    assert client.health()["status"] == "ok"
    spec = tiny_spec()
    submitted = client.submit(spec)
    client.wait(submitted["campaign_id"], timeout=120)
    campaigns = client.list_campaigns()
    assert [c["campaign_id"] for c in campaigns] == [submitted["campaign_id"]]
    shown = client.show(submitted["campaign_id"])
    assert shown["spec"]["budget"] == spec["budget"]
    assert shown["status"] == "completed"
    stats = client.stats()
    assert stats["campaigns_completed"] == 1
    assert stats["requests"] >= 4


def test_error_statuses(served):
    _, _, client = served
    # 404: unknown campaign id.
    with pytest.raises(ServeError) as excinfo:
        client.show("nope")
    assert excinfo.value.status == 404
    # 400: invalid spec (unknown field).
    with pytest.raises(ServeError) as excinfo:
        client.submit(tiny_spec(buget=1.0))
    assert excinfo.value.status == 400
    # 409: result requested before completion (pending campaign).
    submitted = client.submit(tiny_spec())
    try:
        client.result(submitted["campaign_id"])
    except ServeError as error:
        assert error.status == 409
    # 404: unknown route.
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404
    client.wait(submitted["campaign_id"], timeout=120)


def test_concurrent_clients_share_one_daemon(served):
    """The multi-client load path: N threads submit + wait concurrently."""
    _, server, _ = served
    specs = [tiny_spec(name=f"load-{i}", seed=10 + i) for i in range(3)]
    baselines = {spec["name"]: run_in_process(spec)[0] for spec in specs}
    outcomes: dict[str, dict] = {}
    errors: list[Exception] = []

    def one_client(spec: dict) -> None:
        try:
            client = TunerClient(server.url, timeout=60.0)
            submitted = client.submit(spec)
            client.wait(submitted["campaign_id"], timeout=180)
            outcomes[spec["name"]] = client.result(submitted["campaign_id"])
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=one_client, args=(spec,)) for spec in specs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    for spec in specs:
        assert outcomes[spec["name"]] == baselines[spec["name"]].to_dict(), (
            spec["name"]
        )


def test_malformed_sse_cursor_is_a_client_error(served):
    """?after=abc / Last-Event-ID: abc must be 400, not a server fault."""
    _, _, client = served
    submitted = client.submit(tiny_spec(name="cursors"))
    campaign_id = submitted["campaign_id"]
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", f"/campaigns/{campaign_id}/events?after=abc")
    assert excinfo.value.status == 400
    with pytest.raises(ServeError) as excinfo:
        client._request(
            "GET",
            f"/campaigns/{campaign_id}/events",
            headers={"Last-Event-ID": "abc"},
            stream=True,
        )
    assert excinfo.value.status == 400
    client.wait(campaign_id, timeout=120)


def test_tail_does_not_retry_http_errors(served):
    """reconnect only covers dropped connections, never a definitive 404."""
    import time

    _, _, client = served
    start = time.monotonic()
    with pytest.raises(ServeError) as excinfo:
        list(client.tail("nope", reconnect=5))
    assert excinfo.value.status == 404
    assert time.monotonic() - start < 1.0, "404 was retried like a disconnect"
