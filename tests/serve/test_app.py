"""TunerService unit behavior: submissions, dedup, pause/resume, stats."""

from __future__ import annotations

import pytest

from repro.campaigns import COMPLETED, PAUSED
from repro.utils.exceptions import CampaignError, ConfigurationError

from tests.serve.conftest import multi_spec, run_in_process, tiny_spec


def _wait_done(service, campaign_id, timeout=120.0):
    import time

    deadline = time.monotonic() + timeout
    while service.status(campaign_id) != COMPLETED:
        assert time.monotonic() < deadline, service.status(campaign_id)
        service.wait_for_activity(0.1)


def test_submit_runs_to_in_process_result(service):
    spec = tiny_spec()
    baseline, baseline_events = run_in_process(spec)
    submitted = service.submit(spec)
    assert submitted["reused"] is False
    _wait_done(service, submitted["campaign_id"])
    assert service.result(submitted["campaign_id"]) == baseline.to_dict()
    log = service.log(submitted["campaign_id"])
    assert [(e["kind"], e["iteration"], e["payload"]) for e in log] == baseline_events


def test_submit_rejects_unknown_fields(service):
    with pytest.raises(ConfigurationError, match="unknown campaign spec field"):
        service.submit(tiny_spec(buget=10.0))  # the typo must not be dropped


def test_resubmit_deduplicates_by_fingerprint(service):
    spec = tiny_spec()
    first = service.submit(spec)
    second = service.submit(dict(spec))
    assert second["campaign_id"] == first["campaign_id"]
    assert second["reused"] is True
    _wait_done(service, first["campaign_id"])
    # A renamed but otherwise identical spec still dedups (fingerprint
    # ignores the name) and replays the stored result.
    renamed = service.submit(tiny_spec(name="renamed"))
    assert renamed["campaign_id"] == first["campaign_id"]
    assert renamed["reused"] is True


def test_result_before_completion_raises(service):
    submitted = service.submit(multi_spec())
    with pytest.raises(CampaignError, match="has not completed"):
        service.result(submitted["campaign_id"])
    _wait_done(service, submitted["campaign_id"])
    service.result(submitted["campaign_id"])  # now fine


def test_pause_then_resume_is_deterministic(service):
    spec = multi_spec()
    baseline, _ = run_in_process(spec)
    submitted = service.submit(spec)
    campaign_id = submitted["campaign_id"]
    # Wait for the first persisted iteration, then pause mid-run.
    while not any(
        e["kind"] == "iteration" for e in service.log(campaign_id)
    ):
        service.wait_for_activity(0.1)
    outcome = service.pause(campaign_id)
    if outcome["paused"]:  # the campaign may have just finished on its own
        assert service.status(campaign_id) == PAUSED
        service.resume(campaign_id)
    _wait_done(service, campaign_id)
    assert service.result(campaign_id) == baseline.to_dict()


def test_pause_unknown_campaign_raises(service):
    with pytest.raises(CampaignError, match="unknown campaign"):
        service.pause("nope")


def test_server_stats_shape(service):
    submitted = service.submit(tiny_spec())
    _wait_done(service, submitted["campaign_id"])
    stats = service.server_stats()
    for key in (
        "uptime_seconds",
        "requests",
        "campaigns_submitted",
        "events_streamed",
        "scheduler_steps",
        "pump_running",
        "pump_errors",
        "campaigns_total",
        "campaigns_active",
        "campaigns_completed",
        "cache",
    ):
        assert key in stats, key
    assert stats["campaigns_submitted"] == 1
    assert stats["campaigns_total"] == 1
    assert stats["campaigns_completed"] == 1
    assert stats["campaigns_active"] == 0
    assert stats["pump_running"] is True
    assert stats["pump_errors"] == 0


def test_drain_rejects_new_submissions(service):
    summary = service.drain()
    assert summary["suspended"] == []
    with pytest.raises(CampaignError, match="draining"):
        service.submit(tiny_spec())


def test_drain_reports_only_newly_suspended(service):
    """A campaign paused before the drain is not double-counted."""
    submitted = service.submit(multi_spec(name="pause-then-drain"))
    campaign_id = submitted["campaign_id"]
    while not any(e["kind"] == "iteration" for e in service.log(campaign_id)):
        service.wait_for_activity(0.1)
    if not service.pause(campaign_id)["paused"]:
        return  # finished before the pause landed; nothing to assert
    summary = service.drain()
    assert campaign_id not in summary["suspended"]


def test_failed_campaign_resume_retries_with_fresh_instance(service):
    """Resuming a failed campaign re-registers it from the store."""
    # An unknown dataset passes spec validation but fails at build time,
    # so the failure happens under the pump.
    submitted = service.submit(tiny_spec(name="doomed", dataset="not_a_task"))
    campaign_id = submitted["campaign_id"]
    import time

    deadline = time.monotonic() + 60
    while service.status(campaign_id) != "failed":
        assert time.monotonic() < deadline, service.status(campaign_id)
        service.wait_for_activity(0.1)
    assert service.scheduler.errors, "pump should have recorded the failure"
    assert service.scheduler.errors[0][0] == campaign_id
    dead = service.scheduler.find(campaign_id)
    service.resume(campaign_id)
    fresh = service.scheduler.find(campaign_id)
    assert fresh is not None and fresh is not dead, (
        "failed campaign must be retried with a rebuilt Campaign"
    )
