"""The daemon's report endpoints: HTTP == CLI, error mapping, stats.

The equality tests are the wire-level half of the analytics acceptance
criterion: ``GET /reports/summary?kind=<k>`` (and the per-campaign
variant) must return byte-equal JSON to ``cli report <k> --json`` over
the same store file.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.analytics import assert_consistent
from repro.campaigns.store import SqliteStore
from repro.cli import main
from repro.serve import TunerClient, TunerServer, TunerService
from repro.utils.exceptions import ServeError

from tests.analytics.conftest import fill_store
from tests.serve.conftest import tiny_spec

KINDS = ("summary", "slices", "fulfillment", "fairness", "cache")


@pytest.fixture
def filled_served(tmp_path):
    """(store path, client) for a daemon over a filled on-disk store."""
    path = str(tmp_path / "campaigns.sqlite")
    with SqliteStore(path) as seed:
        fill_store(seed)
    service = TunerService(store=SqliteStore(path))
    server = TunerServer(service).start_background()
    client = TunerClient(server.url, timeout=30.0)
    try:
        yield path, service, client
    finally:
        server.shutdown()
        service.close()


def cli_json(*argv) -> dict:
    out = io.StringIO()
    with redirect_stdout(out):
        assert main(list(argv)) == 0
    return json.loads(out.getvalue())


class TestReportEndpoints:
    def test_http_equals_cli_for_every_kind(self, filled_served, tmp_path):
        path, _service, client = filled_served
        analytics_db = str(tmp_path / "cli.analytics")
        for kind in KINDS:
            via_cli = cli_json(
                "report", kind, "--store", path, "--analytics", analytics_db,
                "--json",
            )
            assert client.report(kind) == via_cli

    def test_per_campaign_report(self, filled_served):
        _path, _service, client = filled_served
        payload = client.report("summary", campaign_id="c-beta")
        assert payload["campaign_id"] == "c-beta"
        rows = payload["sections"]["campaign_rollup"]["rows"]
        assert [row[0] for row in rows] == ["c-beta"]

    def test_kind_defaults_to_summary(self, filled_served):
        _path, _service, client = filled_served
        assert client.report()["report"] == "summary"

    def test_error_mapping(self, filled_served):
        _path, _service, client = filled_served
        with pytest.raises(ServeError) as unknown:
            client.report("summary", campaign_id="no-such-campaign")
        assert unknown.value.status == 404
        with pytest.raises(ServeError) as bogus:
            client.report("bogus")
        assert bogus.value.status == 400
        with pytest.raises(ServeError) as global_only:
            client.report("fairness", campaign_id="c-beta")
        assert global_only.value.status == 400

    def test_reports_served_counter(self, filled_served):
        _path, _service, client = filled_served
        before = client.stats()["reports_served"]
        client.report("summary")
        client.report("cache", campaign_id="c-alpha")
        assert client.stats()["reports_served"] == before + 2
        # Failed report requests never increment the served counter.
        with pytest.raises(ServeError):
            client.report("bogus")
        assert client.stats()["reports_served"] == before + 2

    def test_reports_see_newly_appended_events(self, filled_served):
        path, _service, client = filled_served
        first = client.report("summary")
        with SqliteStore(path) as store:
            store.append_event(
                "c-alpha",
                generation=0,
                iteration=3,
                kind="iteration",
                payload={
                    "iteration": 3,
                    "acquired": {"s0": 1},
                    "spent": 2.0,
                    "limit": 100.0,
                    "imbalance_before": 1.2,
                    "imbalance_after": 1.1,
                    "curve_parameters": {"s0": [2.5, 0.7]},
                },
            )
        second = client.report("summary")
        assert second["cursor"] == first["cursor"] + 1
        rollup = {r[0]: r for r in second["sections"]["campaign_rollup"]["rows"]}
        assert rollup["c-alpha"][5] == 4  # iterations


class TestLiveCampaignAnalytics:
    def test_real_campaign_events_verify_against_the_reference(self, served):
        """End-to-end: a genuine campaign run feeds consistent analytics."""
        service, _server, client = served
        submitted = client.submit(tiny_spec(name="analytics-e2e"))
        client.wait(submitted["campaign_id"], timeout=120.0)
        payload = client.report("summary")
        rollup = {
            row[0]: dict(
                zip(payload["sections"]["campaign_rollup"]["columns"], row)
            )
            for row in payload["sections"]["campaign_rollup"]["rows"]
        }
        summary = rollup[submitted["campaign_id"]]
        assert summary["status"] == "completed"
        assert summary["iterations"] >= 1
        assert summary["events"] > summary["iterations"]
        # The real event log — not a synthetic fixture — must satisfy the
        # row-for-row SQL == Python contract too.
        assert_consistent(service.store)
