"""CLI coverage: the ``remote`` family and the ``--json`` output mode."""

from __future__ import annotations

import json

from repro import cli

from tests.serve.conftest import run_in_process, tiny_spec


def _remote(capsys, *argv: str) -> tuple[int, str]:
    code = cli.main(list(argv))
    return code, capsys.readouterr().out


def _submit_args(url: str, name: str = "cli-tiny", seed: int = 3) -> list[str]:
    spec = tiny_spec(name=name, seed=seed)
    return [
        "remote", "submit", "--url", url,
        "--name", spec["name"],
        "--dataset", spec["dataset"],
        "--method", spec["method"],
        "--budget", str(spec["budget"]),
        "--seed", str(spec["seed"]),
        "--initial-size", str(spec["base_size"]),
        "--validation-size", str(spec["validation_size"]),
        "--epochs", str(spec["epochs"]),
        "--curve-points", str(spec["curve_points"]),
    ]


def test_remote_submit_wait_and_result(served, capsys):
    _, server, _ = served
    baseline, _ = run_in_process(tiny_spec(name="cli-tiny"))
    code, out = _remote(capsys, *_submit_args(server.url), "--wait")
    assert code == 0
    assert "completed" in out
    campaign_id = out.split()[0]

    code, out = _remote(
        capsys, "remote", "result", campaign_id, "--url", server.url, "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["schema"] == "repro.remote.result/1"
    assert payload["result"] == baseline.to_dict()


def test_remote_list_show_stats(served, capsys):
    _, server, _ = served
    code, out = _remote(capsys, *_submit_args(server.url), "--wait")
    campaign_id = out.split()[0]

    code, out = _remote(capsys, "remote", "list", "--url", server.url)
    assert code == 0 and campaign_id in out

    code, out = _remote(capsys, "remote", "list", "--url", server.url, "--json")
    payload = json.loads(out)
    assert payload["schema"] == "repro.remote.list/1"
    assert payload["campaigns"][0]["campaign_id"] == campaign_id

    # remote show surfaces the daemon health table alongside the campaign.
    code, out = _remote(capsys, "remote", "show", campaign_id, "--url", server.url)
    assert code == 0
    assert "Tuner service health" in out
    assert "campaigns completed" in out

    code, out = _remote(
        capsys, "remote", "show", campaign_id, "--url", server.url, "--quiet"
    )
    assert out.strip().startswith(f"{campaign_id} completed")

    code, out = _remote(capsys, "remote", "stats", "--url", server.url, "--quiet")
    assert code == 0 and "stored campaign(s)" in out


def test_remote_tail_streams_and_ends(served, capsys):
    _, server, _ = served
    code, out = _remote(capsys, *_submit_args(server.url), "--wait")
    campaign_id = out.split()[0]
    code, out = _remote(
        capsys, "remote", "tail", campaign_id, "--url", server.url, "--quiet"
    )
    assert code == 0
    assert "iteration" in out and "completed" in out.splitlines()[-1]

    code, out = _remote(
        capsys, "remote", "tail", campaign_id, "--url", server.url, "--json"
    )
    payload = json.loads(out)
    assert payload["schema"] == "repro.remote.tail/1"
    assert payload["frames"][-1]["event"] == "end"


def test_remote_errors_exit_2(served, capsys):
    _, server, _ = served
    code = cli.main(["remote", "show", "nope", "--url", server.url])
    assert code == 2
    capsys.readouterr()
    # Unreachable daemon also maps to the ReproError exit code.
    code = cli.main(
        ["remote", "list", "--url", "http://127.0.0.1:1", "--timeout", "2"]
    )
    assert code == 2
    capsys.readouterr()


def test_remote_pause_resume_roundtrip(served, capsys):
    _, server, _ = served
    code, out = _remote(capsys, *_submit_args(server.url, name="pr", seed=9))
    assert code == 0 and "submitted" in out
    campaign_id = out.split(":")[0]
    code, out = _remote(
        capsys, "remote", "pause", campaign_id, "--url", server.url
    )
    assert code == 0
    code, out = _remote(
        capsys, "remote", "resume", campaign_id, "--url", server.url
    )
    assert code == 0
    code, out = _remote(
        capsys, "remote", "wait", campaign_id, "--url", server.url
    )
    assert code == 0 and "completed" in out
