"""Regression: one campaign store hammered from many threads at once.

The serve PR made both store backends thread-safe (the daemon's scheduler
pump appends while HTTP handler threads read).  These tests drive writers
and readers concurrently and assert nothing is lost, duplicated, or torn.
"""

from __future__ import annotations

import threading

import pytest

from repro.campaigns import CampaignRecord, InMemoryStore, SqliteStore

WRITERS = 4
EVENTS_PER_WRITER = 25


def _record(campaign_id: str) -> CampaignRecord:
    return CampaignRecord(
        campaign_id=campaign_id,
        name=campaign_id,
        fingerprint=f"fp-{campaign_id}",
        spec={"name": campaign_id},
    )


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        store = InMemoryStore()
    else:
        store = SqliteStore(str(tmp_path / "hammer.sqlite"))
    yield store
    store.close()


def test_concurrent_appends_lose_nothing(store):
    store.create_campaign(_record("hammered"))
    errors: list[Exception] = []
    barrier = threading.Barrier(WRITERS)

    def writer(worker: int) -> None:
        try:
            barrier.wait()
            for i in range(EVENTS_PER_WRITER):
                store.append_event(
                    "hammered",
                    generation=0,
                    iteration=i,
                    kind="iteration",
                    payload={"worker": worker, "i": i},
                )
                store.save_snapshot(
                    "hammered",
                    generation=0,
                    iteration=i,
                    payload=bytes([worker, i]),
                )
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=writer, args=(worker,)) for worker in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    events = store.events("hammered")
    assert len(events) == WRITERS * EVENTS_PER_WRITER
    # Sequence numbers are unique and strictly increasing in append order.
    seqs = [event.seq for event in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    # Every (worker, i) payload arrived exactly once, untorn.
    seen = {(event.payload["worker"], event.payload["i"]) for event in events}
    assert len(seen) == WRITERS * EVENTS_PER_WRITER
    assert store.latest_snapshot("hammered") is not None


def test_concurrent_readers_during_writes(store):
    store.create_campaign(_record("mixed"))
    errors: list[Exception] = []
    stop = threading.Event()

    def writer() -> None:
        try:
            for i in range(EVENTS_PER_WRITER * 2):
                store.append_event(
                    "mixed",
                    generation=0,
                    iteration=i,
                    kind="iteration",
                    payload={"i": i},
                )
                store.set_status("mixed", "running")
        except Exception as error:  # noqa: BLE001
            errors.append(error)
        finally:
            stop.set()

    def reader() -> None:
        try:
            while not stop.is_set():
                events = store.events("mixed")
                # A reader never observes a gap: seqs are a dense prefix.
                seqs = [event.seq for event in events]
                assert seqs == sorted(seqs)
                store.list_campaigns()
                store.latest_generation("mixed")
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert len(store.events("mixed")) == EVENTS_PER_WRITER * 2


def test_concurrent_campaign_creation(store):
    """Distinct campaigns created from distinct threads all land."""
    errors: list[Exception] = []

    def creator(worker: int) -> None:
        try:
            store.create_campaign(_record(f"c{worker}"))
            store.append_event(
                f"c{worker}", generation=0, iteration=0, kind="iteration",
                payload={"worker": worker},
            )
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=creator, args=(w,)) for w in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert {r.campaign_id for r in store.list_campaigns()} == {
        f"c{w}" for w in range(WRITERS)
    }
    for worker in range(WRITERS):
        assert len(store.events(f"c{worker}")) == 1
