"""Monitoring over the wire: /health/deep, /alerts, Prometheus metrics.

The daemon's monitoring surface must agree with the offline one: the
alerts served over HTTP are the same replayed rows ``monitor alerts``
prints, and a critical component flips ``GET /health/deep`` to 503 while
leaving the document readable (a health report, not a failure).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.campaigns.store import COMPLETED, RUNNING, CampaignRecord
from repro.monitor import alert_history
from repro.telemetry import MetricsRegistry, set_registry
from repro.utils.exceptions import ServeError

from tests.serve.conftest import multi_spec

FLAKY = dict(
    dataset="adult_like",
    scenario="flaky_source",
    method="moderate",
    budget=300.0,
    seed=0,
    base_size=60,
    validation_size=50,
    epochs=8,
    curve_points=3,
)


def critical_alert(iteration=1):
    return {
        "rule": "fulfillment_shortfall",
        "component": "acquisition",
        "severity": "critical",
        "state": "fired",
        "value": 0.6,
        "threshold": 0.2,
        "window": 3,
        "iteration": iteration,
        "message": "synthetic",
    }


def raw_get(url):
    """(status, parsed JSON body) without the client's error mapping."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())


def test_health_deep_ok_on_idle_daemon(served):
    _, _, client = served
    verdict = client.health_deep()
    assert verdict["status"] == "ok"
    assert sorted(verdict["components"]) == [
        "acquisition", "cache", "engine", "scheduler", "serve",
    ]
    assert all(
        slot["status"] == "ok" for slot in verdict["components"].values()
    )


def test_health_deep_503_while_critical_200_after_recovery(served):
    service, server, client = served
    # Inject a running campaign with an unresolved critical alert — the
    # deterministic version of "a flaky campaign is mid-incident".
    service.store.create_campaign(CampaignRecord(
        campaign_id="sick", name="sick", fingerprint="f-sick", spec={},
        status=RUNNING,
    ))
    service.store.append_event(
        "sick", generation=0, kind="alert", iteration=1,
        payload=critical_alert(),
    )
    status, body = raw_get(server.url + "/health/deep")
    assert status == 503
    assert body["status"] == "critical"
    assert body["components"]["acquisition"]["status"] == "critical"
    # The client returns the verdict instead of raising on 503 (the
    # evaluations counter ticks per request; everything else is equal).
    mirrored = client.health_deep()
    assert mirrored["status"] == body["status"]
    assert mirrored["components"] == body["components"]
    # Recovery: the campaign reaches a terminal state.
    service.store.set_status("sick", COMPLETED)
    status, body = raw_get(server.url + "/health/deep")
    assert status == 200
    assert body["status"] == "ok"


def test_alerts_endpoint_matches_store_replay(served):
    service, _, client = served
    spec = dict(FLAKY, name="wire-flaky")
    campaign_id = client.submit(spec)["campaign_id"]
    client.wait(campaign_id, timeout=180)
    payload = client.alerts()
    assert payload["count"] == len(payload["alerts"]) > 0
    assert payload["alerts"] == alert_history(service.store)
    scoped = client.alerts(campaign_id=campaign_id)
    assert scoped == payload  # only one campaign on this daemon
    rules = {row["rule"] for row in payload["alerts"]}
    assert "fulfillment_shortfall" in rules
    # Unknown campaign ids map to 404, like every other endpoint.
    with pytest.raises(ServeError) as excinfo:
        client.alerts(campaign_id="nope")
    assert excinfo.value.status == 404


def test_metrics_prometheus_exposition(served):
    _, _, client = served
    spec = multi_spec(name="prom")
    campaign_id = client.submit(spec)["campaign_id"]
    client.wait(campaign_id, timeout=180)
    snapshot = client.metrics()
    assert "counters" in snapshot
    text = client.metrics(format="prometheus")
    assert "# TYPE" in text
    assert "session_iterations" in text
    # Counter values agree between the two formats.
    iterations = snapshot["counters"]["session.iterations"]
    assert f"session_iterations {iterations}" in text
    # Histogram families render the full cumulative-bucket series.
    if snapshot.get("histograms"):
        assert '_bucket{' in text and 'le="+Inf"' in text
    with pytest.raises(ServeError) as excinfo:
        client._request("GET", "/metrics?format=xml")
    assert excinfo.value.status == 400


def test_health_deep_trajectory_over_flaky_campaign(served):
    # End-to-end: a flaky campaign degrades the live verdict mid-run and
    # the daemon recovers once it completes.  The background pump is
    # stopped and the scheduler stepped by hand so every phase of the
    # incident is observed over the wire instead of racing the campaign's
    # wall-clock (on a loaded box a poll loop can miss the whole window).
    # A real daemon owns its process, so /health/deep sampling the
    # process-wide metrics registry is correct there; under pytest that
    # registry carries every previous test's counters, so give this
    # daemon a fresh one or the cache-rate rules judge foreign history.
    service, _, client = served
    service.scheduler.stop_pump()
    previous_registry = set_registry(MetricsRegistry())
    try:
        campaign_id = client.submit(dict(FLAKY, name="trajectory"))["campaign_id"]
        statuses = []
        while client.show(campaign_id)["status"] not in ("completed", "failed"):
            service.scheduler.step()
            statuses.append(client.health_deep()["status"])
    finally:
        set_registry(previous_registry)
    assert client.show(campaign_id)["status"] == "completed"
    # ok before the incident, critical while the fired alert is open,
    # ok again once the campaign resolves it and completes.
    assert "critical" in statuses, statuses
    assert statuses[0] == "ok"
    assert statuses[-1] == "ok"
    fired = [
        alert
        for alert in client.alerts(campaign_id=campaign_id)["alerts"]
        if alert["state"] == "fired" and alert["severity"] == "critical"
    ]
    assert fired, "the flaky source always trips a critical rule"
