"""Shared fixtures for the tuner-service test suite.

Two campaign sizes are used throughout: ``tiny_spec`` completes in a single
iteration (~1s of training on the CI box), ``multi_spec`` runs several
iterations so pause/drain can land mid-run.  Both are deterministic, so
every test can compare wire-served results against an in-process
:class:`~repro.campaigns.campaign.Campaign` baseline.
"""

from __future__ import annotations

import pytest

from repro.campaigns import Campaign, CampaignSpec, InMemoryStore, replay_events
from repro.serve import TunerClient, TunerServer, TunerService


def tiny_spec(name: str = "tiny", seed: int = 3, **overrides) -> dict:
    """A one-iteration campaign spec as a JSON-style dict."""
    spec = {
        "name": name,
        "dataset": "adult_like",
        "scenario": "basic",
        "method": "uniform",
        "budget": 120.0,
        "seed": seed,
        "base_size": 30,
        "validation_size": 30,
        "epochs": 4,
        "curve_points": 3,
    }
    spec.update(overrides)
    return spec


def multi_spec(name: str = "multi", seed: int = 0, **overrides) -> dict:
    """A several-iteration campaign spec (drain/pause can land mid-run)."""
    spec = {
        "name": name,
        "dataset": "adult_like",
        "scenario": "basic",
        "method": "moderate",
        "budget": 600.0,
        "seed": seed,
        "base_size": 50,
        "validation_size": 50,
        "epochs": 8,
        "curve_points": 3,
    }
    spec.update(overrides)
    return spec


def run_in_process(spec: dict):
    """Run a spec via Campaign.run on a fresh in-memory store.

    Returns ``(TuningResult, [(kind, iteration, payload), ...])`` — the
    baseline every wire-level test compares against.
    """
    store = InMemoryStore()
    campaign = Campaign.start(store, CampaignSpec(**spec))
    result = campaign.run()
    events = [
        (event.kind, event.iteration, event.payload)
        for event in replay_events(store.events(campaign.campaign_id))
    ]
    return result, events


def event_keys(frames) -> list[tuple]:
    """Normalize SSE frames / event dicts to comparable (kind, iter, payload)."""
    keys = []
    for frame in frames:
        data = frame.get("data", frame)
        if frame.get("id") is None and "kind" not in data:
            continue  # tick / end frames carry no persisted event
        keys.append((data["kind"], data["iteration"], data["payload"]))
    return keys


@pytest.fixture
def service():
    """A started in-memory TunerService; drained and closed on teardown."""
    app = TunerService().start()
    try:
        yield app
    finally:
        app.close()


@pytest.fixture
def served(service):
    """(service, server, client) against a live HTTP daemon on a free port."""
    server = TunerServer(service).start_background()
    client = TunerClient(server.url, timeout=30.0)
    try:
        yield service, server, client
    finally:
        server.shutdown()
