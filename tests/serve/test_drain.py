"""Graceful drain: SIGTERM a daemon mid-run, restart, resume, byte-identical.

Two levels:

* in-process — ``TunerService.drain()`` mid-run, a second service over the
  same SQLite file resumes and finishes with results identical to an
  uninterrupted ``Campaign.run``;
* subprocess — the real ``python -m repro.cli serve`` daemon is SIGTERMed
  while a campaign runs, restarted with ``--resume-all``, and the final
  result fetched over HTTP equals the in-process baseline (the CI
  serve-smoke job in miniature).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaigns import SqliteStore
from repro.serve import TunerClient, TunerServer, TunerService

from tests.serve.conftest import multi_spec, run_in_process

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def test_drain_restart_resume_is_byte_identical(tmp_path):
    spec = multi_spec(name="drained")
    baseline, baseline_events = run_in_process(spec)

    path = str(tmp_path / "serve.sqlite")
    app = TunerService(store=SqliteStore(path)).start()
    campaign_id = app.submit(spec)["campaign_id"]
    # Let at least one iteration persist so the drain lands mid-run.
    while not any(e["kind"] == "iteration" for e in app.log(campaign_id)):
        app.wait_for_activity(0.1)
    summary = app.drain()
    app.store.close()
    assert campaign_id in summary["suspended"]

    restarted = TunerService(store=SqliteStore(path))
    assert restarted.resume_all() == [campaign_id]
    restarted.start()
    deadline = time.monotonic() + 180
    while restarted.status(campaign_id) != "completed":
        assert time.monotonic() < deadline
        restarted.wait_for_activity(0.1)
    assert restarted.result(campaign_id) == baseline.to_dict()
    log = restarted.log(campaign_id)
    assert [(e["kind"], e["iteration"], e["payload"]) for e in log] == baseline_events
    # The resumed portion ran under a newer generation.
    assert max(e["generation"] for e in log) >= 1
    restarted.close()


def _spawn_daemon(store_path: str, *extra: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", store_path, "--port", "0", "--resume-all", "--quiet",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"serving on (http://[\d.]+:\d+)", line)
    assert match, (line, process.stderr.read() if process.poll() else "")
    return process, match.group(1)


def test_cli_daemon_sigterm_restart_resume(tmp_path):
    spec = multi_spec(name="cli-drained")
    baseline, _ = run_in_process(spec)
    store_path = str(tmp_path / "cli-serve.sqlite")

    process, url = _spawn_daemon(store_path)
    try:
        client = TunerClient(url, timeout=30.0)
        client.wait_ready(timeout=15)
        campaign_id = client.submit(spec)["campaign_id"]
        # SIGTERM as soon as the first iteration event is streamed: the
        # daemon drains (checkpoint + pause) and exits 0.
        for frame in client.tail(campaign_id, reconnect=1):
            if frame["event"] in ("iteration", "end"):
                break
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    process, url = _spawn_daemon(store_path)
    try:
        client = TunerClient(url, timeout=30.0)
        client.wait_ready(timeout=15)
        summary = client.wait(campaign_id, timeout=180)
        assert summary["status"] == "completed"
        assert client.result(campaign_id) == baseline.to_dict()
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=30)


def test_sigterm_drain_flushes_trace_metrics(tmp_path):
    """A SIGTERMed ``serve --trace-out`` daemon writes metrics.json.

    The metrics snapshot is flushed at the *start* of the drain and the
    (benign) signal handlers stay installed through it, so even a second
    SIGTERM landing mid-drain cannot leave the telemetry buffered in
    memory — the failure mode this test pins down.
    """
    import json

    from tests.serve.conftest import tiny_spec

    store_path = str(tmp_path / "traced.sqlite")
    trace_dir = tmp_path / "trace"
    process, url = _spawn_daemon(store_path, "--trace-out", str(trace_dir))
    try:
        client = TunerClient(url, timeout=30.0)
        client.wait_ready(timeout=15)
        campaign_id = client.submit(tiny_spec(name="traced"))["campaign_id"]
        client.wait(campaign_id, timeout=120)
        process.send_signal(signal.SIGTERM)
        time.sleep(0.05)
        process.send_signal(signal.SIGTERM)  # second signal mid-drain
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    metrics_path = trace_dir / "metrics.json"
    assert metrics_path.exists()
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["session.iterations"] >= 1
    assert snapshot["counters"]["scheduler.steps"] >= 1


def test_sse_stream_ends_when_daemon_drains(tmp_path):
    """A live tail receives an end frame (not a hang) on drain."""
    path = str(tmp_path / "ending.sqlite")
    app = TunerService(store=SqliteStore(path)).start()
    server = TunerServer(app).start_background()
    client = TunerClient(server.url, timeout=30.0)
    campaign_id = client.submit(multi_spec(name="ender"))["campaign_id"]
    frames = []
    for frame in client.tail(campaign_id):
        frames.append(frame)
        if frame["event"] == "iteration":
            app.drain()  # drain while the stream is live
    assert frames[-1]["event"] == "end"
    assert frames[-1]["data"]["status"] in ("draining", "paused")
    server.shutdown()
    app.close()
