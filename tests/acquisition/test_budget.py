"""Tests for repro.acquisition.budget."""

from __future__ import annotations

import pytest

from repro.acquisition.budget import BudgetLedger
from repro.utils.exceptions import BudgetError, ConfigurationError


class TestBudgetLedger:
    def test_initial_state(self):
        ledger = BudgetLedger(total=100.0)
        assert ledger.remaining == 100.0
        assert not ledger.exhausted
        assert ledger.spent == 0.0

    def test_negative_total_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetLedger(total=-5.0)

    def test_charge_reduces_remaining(self):
        ledger = BudgetLedger(total=100.0)
        charged = ledger.charge("a", count=10, unit_cost=1.5)
        assert charged == 15.0
        assert ledger.remaining == 85.0
        assert ledger.spent == 15.0

    def test_overspending_rejected(self):
        ledger = BudgetLedger(total=10.0)
        with pytest.raises(BudgetError):
            ledger.charge("a", count=11, unit_cost=1.0)

    def test_small_tolerance_allowed(self):
        ledger = BudgetLedger(total=10.0, tolerance=0.5)
        ledger.charge("a", count=21, unit_cost=0.5)  # 10.5 <= 10 + 0.5
        assert ledger.spent == pytest.approx(10.5)

    def test_negative_count_rejected(self):
        with pytest.raises(BudgetError):
            BudgetLedger(total=10.0).charge("a", count=-1, unit_cost=1.0)

    def test_exhausted_flag(self):
        ledger = BudgetLedger(total=5.0)
        ledger.charge("a", count=5, unit_cost=1.0)
        assert ledger.exhausted
        assert ledger.remaining == 0.0

    def test_can_afford_and_affordable_count(self):
        ledger = BudgetLedger(total=10.0)
        assert ledger.can_afford(unit_cost=2.0, count=5)
        assert not ledger.can_afford(unit_cost=2.0, count=6)
        assert ledger.affordable_count(unit_cost=3.0) == 3

    def test_affordable_count_zero_cost_rejected(self):
        with pytest.raises(BudgetError):
            BudgetLedger(total=10.0).affordable_count(0.0)

    def test_per_slice_accounting(self):
        ledger = BudgetLedger(total=100.0)
        ledger.charge("a", 10, 1.0)
        ledger.charge("b", 5, 2.0)
        ledger.charge("a", 3, 1.0)
        assert ledger.acquired_by_slice() == {"a": 13, "b": 5}
        assert ledger.spent_by_slice() == {"a": 13.0, "b": 10.0}

    def test_charge_history_recorded(self):
        ledger = BudgetLedger(total=10.0)
        ledger.charge("a", 2, 1.0)
        assert len(ledger.charges) == 1
        assert ledger.charges[0].slice_name == "a"
        assert ledger.charges[0].total == 2.0
