"""Test package."""
