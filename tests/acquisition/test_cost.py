"""Tests for repro.acquisition.cost."""

from __future__ import annotations

import pytest

from repro.acquisition.cost import (
    CostModel,
    EscalatingCost,
    TableCost,
    UnitCost,
    cost_model_from_slices,
)
from repro.slices.slice import SliceSpec
from repro.utils.exceptions import ConfigurationError


class TestUnitCost:
    def test_constant_cost(self):
        cost = UnitCost()
        assert cost.cost("anything") == 1.0
        cost.record_acquisition("anything", 100)
        assert cost.cost("anything") == 1.0

    def test_custom_per_example(self):
        assert UnitCost(2.5).cost("x") == 2.5

    def test_invalid_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitCost(0.0)

    def test_satisfies_protocol(self):
        assert isinstance(UnitCost(), CostModel)


class TestTableCost:
    def test_lookup(self):
        cost = TableCost({"a": 1.2, "b": 1.5})
        assert cost.cost("a") == 1.2
        assert cost.cost("b") == 1.5

    def test_default_for_unknown(self):
        cost = TableCost({"a": 1.2}, default=2.0)
        assert cost.cost("unknown") == 2.0

    def test_unknown_without_default_rejected(self):
        with pytest.raises(ConfigurationError):
            TableCost({"a": 1.2}).cost("unknown")

    def test_empty_table_without_default_rejected(self):
        with pytest.raises(ConfigurationError):
            TableCost({})

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            TableCost({"a": 0.0})

    def test_recording_does_not_change_costs(self):
        cost = TableCost({"a": 1.2})
        cost.record_acquisition("a", 500)
        assert cost.cost("a") == 1.2


class TestEscalatingCost:
    def test_cost_grows_per_batch(self):
        cost = EscalatingCost({"a": 1.0}, escalation=0.5)
        assert cost.cost("a") == 1.0
        cost.record_acquisition("a", 10)
        assert cost.cost("a") == pytest.approx(1.5)
        cost.record_acquisition("a", 10)
        assert cost.cost("a") == pytest.approx(2.25)

    def test_zero_count_does_not_escalate(self):
        cost = EscalatingCost({"a": 1.0}, escalation=0.5)
        cost.record_acquisition("a", 0)
        assert cost.cost("a") == 1.0
        assert cost.batches_recorded("a") == 0

    def test_slices_escalate_independently(self):
        cost = EscalatingCost({"a": 1.0, "b": 2.0}, escalation=0.1)
        cost.record_acquisition("a", 5)
        assert cost.cost("a") == pytest.approx(1.1)
        assert cost.cost("b") == pytest.approx(2.0)

    def test_default_used_for_unknown_slices(self):
        cost = EscalatingCost({"a": 1.0}, default=3.0)
        assert cost.cost("other") == 3.0


class TestCostModelFromSlices:
    def test_costs_read_from_specs(self):
        specs = [SliceSpec("a", cost=1.1), SliceSpec("b", cost=1.7)]
        model = cost_model_from_slices(specs)
        assert model.cost("a") == 1.1
        assert model.cost("b") == 1.7
