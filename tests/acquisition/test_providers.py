"""Tests for repro.acquisition.providers: registry, composite, throttle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.providers import (
    CompositeSource,
    ThrottledSource,
    available_sources,
    get_source,
    is_source_registered,
    register_source,
    source_descriptions,
    unregister_source,
)
from repro.acquisition.source import (
    DataSource,
    GeneratorDataSource,
    PoolDataSource,
)
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError, ConfigurationError


def make_pool(n: int, label: int = 0, n_features: int = 3) -> Dataset:
    rng = np.random.default_rng(n)
    return Dataset(rng.normal(size=(n, n_features)), np.full(n, label))


class TestSourceRegistry:
    def test_builtins_registered(self):
        names = available_sources()
        for name in ("generator", "pool", "crowdsourcing", "composite", "throttled"):
            assert name in names

    def test_aliases_resolve(self):
        assert is_source_registered("simulator")
        assert is_source_registered("amt")
        assert not is_source_registered("no_such_source")

    def test_get_source_builds_instances(self, tiny_task):
        source = get_source("generator", task=tiny_task, random_state=3)
        assert isinstance(source, GeneratorDataSource)
        assert len(source.acquire("slice_0", 4)) == 4

    def test_get_source_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_source("no_such_source")

    def test_descriptions_cover_all_primaries(self):
        descriptions = source_descriptions()
        assert set(descriptions) == set(available_sources())
        assert all(descriptions[name] for name in ("generator", "pool"))

    def test_custom_registration_and_teardown(self):
        @register_source("test_only_source", description="for this test")
        class TestOnlySource:
            def acquire(self, slice_name, count):
                return Dataset.empty(1)

            def available(self, slice_name):
                return 0

        try:
            assert is_source_registered("test_only_source")
            assert isinstance(get_source("test_only_source"), DataSource)
        finally:
            unregister_source("test_only_source")
        assert not is_source_registered("test_only_source")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_source("generator")(GeneratorDataSource)

    def test_factory_must_return_datasource(self):
        register_source("broken_source")(lambda: object())
        try:
            with pytest.raises(ConfigurationError):
                get_source("broken_source")
        finally:
            unregister_source("broken_source")


class TestCompositeSource:
    def test_failover_on_shortfall(self, tiny_task):
        pool = PoolDataSource({"slice_0": make_pool(5, n_features=8)}, random_state=0)
        generator = GeneratorDataSource(tiny_task, random_state=1)
        composite = CompositeSource({"pool": pool, "generator": generator})
        delivered = composite.acquire("slice_0", 12)
        assert len(delivered) == 12
        assert composite.last_provenance == ("pool", "generator")
        assert composite.last_contributions == {"pool": 5, "generator": 7}

    def test_failover_on_uncovered_slice(self, tiny_task):
        pool = PoolDataSource({"slice_0": make_pool(5, n_features=8)}, random_state=0)
        generator = GeneratorDataSource(tiny_task, random_state=1)
        composite = CompositeSource({"pool": pool, "generator": generator})
        delivered = composite.acquire("slice_1", 6)
        assert len(delivered) == 6
        assert composite.last_provenance == ("generator",)

    def test_priority_order_respected(self, tiny_task):
        pool = PoolDataSource({"slice_0": make_pool(20, n_features=8)}, random_state=0)
        generator = GeneratorDataSource(tiny_task, random_state=1)
        composite = CompositeSource([("pool", pool), ("generator", generator)])
        composite.acquire("slice_0", 10)
        assert composite.last_provenance == ("pool",)
        assert generator.total_delivered == 0

    def test_all_providers_refusing_raises(self):
        pool_a = PoolDataSource({"a": make_pool(3)}, random_state=0)
        pool_b = PoolDataSource({"b": make_pool(3)}, random_state=0)
        composite = CompositeSource({"a_pool": pool_a, "b_pool": pool_b})
        with pytest.raises(AcquisitionError):
            composite.acquire("c", 1)

    def test_available_sums_finite_providers(self):
        composite = CompositeSource(
            {
                "one": PoolDataSource({"a": make_pool(3)}, random_state=0),
                "two": PoolDataSource({"a": make_pool(4)}, random_state=0),
            }
        )
        assert composite.available("a") == 7

    def test_available_unlimited_when_any_generator(self, tiny_task):
        composite = CompositeSource(
            {
                "pool": PoolDataSource(
                    {"slice_0": make_pool(3, n_features=8)}, random_state=0
                ),
                "generator": GeneratorDataSource(tiny_task, random_state=1),
            }
        )
        assert composite.available("slice_0") is None

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeSource({})

    def test_satisfies_datasource_protocol(self, tiny_task):
        composite = CompositeSource(
            {"generator": GeneratorDataSource(tiny_task, random_state=0)}
        )
        assert isinstance(composite, DataSource)


class TestThrottledSource:
    def test_caps_each_request(self, tiny_task):
        throttled = ThrottledSource(
            GeneratorDataSource(tiny_task, random_state=0), per_request_cap=4
        )
        assert len(throttled.acquire("slice_0", 10)) == 4
        assert throttled.throttled_requests == 1
        assert len(throttled.acquire("slice_0", 3)) == 3
        assert throttled.throttled_requests == 1

    def test_per_slice_caps(self, tiny_task):
        throttled = ThrottledSource(
            GeneratorDataSource(tiny_task, random_state=0),
            per_request_cap={"slice_0": 2},
        )
        assert len(throttled.acquire("slice_0", 10)) == 2
        assert len(throttled.acquire("slice_1", 10)) == 10  # uncapped slice

    def test_simulated_latency_accumulates_without_sleeping(self, tiny_task):
        throttled = ThrottledSource(
            GeneratorDataSource(tiny_task, random_state=0),
            latency_per_request=1.0,
            latency_per_example=0.5,
        )
        throttled.acquire("slice_0", 4)
        assert throttled.simulated_seconds == pytest.approx(1.0 + 0.5 * 4)
        throttled.acquire("slice_0", 2)
        assert throttled.simulated_seconds == pytest.approx(2.0 + 0.5 * 6)

    def test_availability_delegates(self):
        throttled = ThrottledSource(
            PoolDataSource({"a": make_pool(9)}, random_state=0), per_request_cap=2
        )
        assert throttled.available("a") == 9

    def test_invalid_cap_rejected(self, tiny_task):
        generator = GeneratorDataSource(tiny_task, random_state=0)
        with pytest.raises(ConfigurationError):
            ThrottledSource(generator, per_request_cap=0)
        with pytest.raises(ConfigurationError):
            ThrottledSource(generator, per_request_cap={"slice_0": 0})

    def test_satisfies_datasource_protocol(self, tiny_task):
        throttled = ThrottledSource(GeneratorDataSource(tiny_task, random_state=0))
        assert isinstance(throttled, DataSource)
