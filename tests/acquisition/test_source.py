"""Tests for repro.acquisition.source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.source import DataSource, GeneratorDataSource, PoolDataSource
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError


def make_pool(n: int, label: int = 0) -> Dataset:
    rng = np.random.default_rng(n)
    return Dataset(rng.normal(size=(n, 3)), np.full(n, label))


class TestGeneratorDataSource:
    def test_acquire_returns_requested_count(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        assert len(source.acquire("slice_0", 17)) == 17

    def test_unlimited_availability(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        assert source.available("slice_1") is None

    def test_total_delivered_tracked(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        source.acquire("slice_0", 5)
        source.acquire("slice_1", 7)
        assert source.total_delivered == 12

    def test_negative_count_rejected(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        with pytest.raises(AcquisitionError):
            source.acquire("slice_0", -1)

    def test_unknown_slice_rejected(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        with pytest.raises(Exception):
            source.available("not_a_slice")

    def test_satisfies_datasource_protocol(self, tiny_task):
        assert isinstance(GeneratorDataSource(tiny_task), DataSource)


class TestPoolDataSource:
    def test_acquire_draws_without_replacement(self):
        source = PoolDataSource({"a": make_pool(30)}, random_state=0)
        first = source.acquire("a", 10)
        assert len(first) == 10
        assert source.available("a") == 20

    def test_exhausting_the_pool(self):
        source = PoolDataSource({"a": make_pool(15)}, random_state=0)
        source.acquire("a", 15)
        assert source.available("a") == 0
        assert len(source.acquire("a", 5)) == 0

    def test_truncates_when_not_strict(self):
        source = PoolDataSource({"a": make_pool(8)}, random_state=0, strict=False)
        assert len(source.acquire("a", 20)) == 8

    def test_strict_mode_raises_when_short(self):
        source = PoolDataSource({"a": make_pool(8)}, random_state=0, strict=True)
        with pytest.raises(AcquisitionError):
            source.acquire("a", 20)

    def test_unknown_slice_rejected(self):
        source = PoolDataSource({"a": make_pool(8)})
        with pytest.raises(AcquisitionError):
            source.acquire("b", 1)

    def test_negative_count_rejected(self):
        source = PoolDataSource({"a": make_pool(8)})
        with pytest.raises(AcquisitionError):
            source.acquire("a", -2)

    def test_empty_pools_rejected(self):
        with pytest.raises(AcquisitionError):
            PoolDataSource({})

    def test_total_delivered_tracked(self):
        source = PoolDataSource({"a": make_pool(30)}, random_state=0)
        source.acquire("a", 5)
        source.acquire("a", 6)
        assert source.total_delivered == 11

    def test_satisfies_datasource_protocol(self):
        assert isinstance(PoolDataSource({"a": make_pool(3)}), DataSource)

    def test_draining_by_small_acquires_is_exact(self):
        """Regression: many partial acquires never over-report or duplicate.

        Drains a pool of 57 uniquely-tagged examples with acquires of odd
        sizes (including over-asks) and checks, after every step, that
        ``available()`` plus everything delivered equals the initial size,
        that no example is ever delivered twice, and that the drained pool
        keeps returning empty datasets instead of recycling data.
        """
        n = 57
        features = np.arange(n, dtype=float).reshape(n, 1)  # unique tags
        pool = Dataset(features, np.zeros(n, dtype=int))
        source = PoolDataSource({"a": pool}, random_state=3)
        seen: set[float] = set()
        delivered_total = 0
        for step, ask in enumerate([5, 1, 9, 2, 13, 4, 30, 8, 5]):
            batch = source.acquire("a", ask)
            tags = [float(x) for x in batch.features[:, 0]]
            assert not seen.intersection(tags), f"duplicate delivery at step {step}"
            seen.update(tags)
            delivered_total += len(batch)
            assert source.available("a") == n - delivered_total
            assert source.available("a") + delivered_total == n
        assert delivered_total == n
        assert source.available("a") == 0
        assert len(source.acquire("a", 10)) == 0
        assert source.available("a") == 0
