"""Tests for repro.acquisition.crowdsourcing."""

from __future__ import annotations

import pytest

from repro.acquisition.crowdsourcing import (
    CrowdsourcingSimulator,
    WorkerPool,
)
from repro.acquisition.source import GeneratorDataSource
from repro.datasets.faces import UTKFACE_COSTS, UTKFACE_TASK_SECONDS, faces_like_task
from repro.utils.exceptions import AcquisitionError, ConfigurationError


@pytest.fixture
def crowd() -> CrowdsourcingSimulator:
    task = faces_like_task()
    return CrowdsourcingSimulator(
        source=GeneratorDataSource(task, random_state=0),
        task_seconds=UTKFACE_TASK_SECONDS,
        workers=WorkerPool(mistake_rate=0.1, duplicate_rate=0.05, speed_spread=0.2),
        random_state=1,
    )


class TestWorkerPool:
    def test_defaults_valid(self):
        pool = WorkerPool()
        assert 0 <= pool.mistake_rate <= 1

    @pytest.mark.parametrize(
        "kwargs", [{"mistake_rate": 1.5}, {"duplicate_rate": -0.1}, {"speed_spread": -1}]
    )
    def test_invalid_rates_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkerPool(**kwargs)


class TestCrowdsourcingSimulator:
    def test_delivers_at_most_requested(self, crowd):
        delivered = crowd.acquire("White_Male", 100)
        assert 0 < len(delivered) <= 100

    def test_filtering_accounted_in_report(self, crowd):
        crowd.acquire("Black_Female", 200)
        report = crowd.reports[-1]
        assert report.requested == 200
        assert (
            report.delivered
            == report.submitted - report.mistakes_filtered - report.duplicates_filtered
        )

    def test_some_submissions_filtered_at_high_rates(self):
        task = faces_like_task()
        noisy = CrowdsourcingSimulator(
            source=GeneratorDataSource(task, random_state=0),
            task_seconds=UTKFACE_TASK_SECONDS,
            workers=WorkerPool(mistake_rate=0.4, duplicate_rate=0.2),
            random_state=2,
        )
        delivered = noisy.acquire("White_Male", 300)
        assert len(delivered) < 300

    def test_zero_request(self, crowd):
        delivered = crowd.acquire("White_Male", 0)
        assert len(delivered) == 0
        assert crowd.reports[-1].requested == 0

    def test_negative_request_rejected(self, crowd):
        with pytest.raises(AcquisitionError):
            crowd.acquire("White_Male", -1)

    def test_unknown_slice_rejected(self, crowd):
        with pytest.raises(AcquisitionError):
            crowd.acquire("Martian_Male", 10)

    def test_task_durations_near_configured_mean(self, crowd):
        crowd.acquire("Indian_Female", 300)
        observed = crowd.observed_mean_seconds()["Indian_Female"]
        assert observed == pytest.approx(UTKFACE_TASK_SECONDS["Indian_Female"], rel=0.15)

    def test_derive_costs_reproduces_table1(self, crowd):
        # With no spread the derived costs must match the paper's Table 1
        # exactly, because the construction is identical.
        task = faces_like_task()
        exact = CrowdsourcingSimulator(
            source=GeneratorDataSource(task, random_state=0),
            task_seconds=UTKFACE_TASK_SECONDS,
            workers=WorkerPool(mistake_rate=0.0, duplicate_rate=0.0, speed_spread=0.0),
            random_state=3,
        )
        for name in UTKFACE_TASK_SECONDS:
            exact.acquire(name, 20)
        derived = exact.derive_costs(round_to=0.1)
        assert derived == pytest.approx(UTKFACE_COSTS)

    def test_summary_aggregates_batches(self, crowd):
        crowd.acquire("White_Male", 50)
        crowd.acquire("White_Male", 70)
        summary = crowd.summary()
        assert summary["White_Male"]["requested"] == 120

    def test_available_delegates_to_source(self, crowd):
        assert crowd.available("White_Male") is None

    def test_empty_task_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            CrowdsourcingSimulator(
                source=GeneratorDataSource(faces_like_task()), task_seconds={}
            )


def _fresh_simulator(seed: int = 11) -> CrowdsourcingSimulator:
    task = faces_like_task()
    return CrowdsourcingSimulator(
        source=GeneratorDataSource(task, random_state=seed),
        task_seconds=UTKFACE_TASK_SECONDS,
        workers=WorkerPool(mistake_rate=0.08, duplicate_rate=0.04, speed_spread=0.2),
        random_state=seed + 1,
    )


class TestCrowdsourcingDeterminism:
    """Satellite: same seed => identical campaign, directly and routed."""

    ORDERS = [("White_Male", 40), ("Black_Female", 25), ("White_Male", 10)]

    def _run_direct(self):
        crowd = _fresh_simulator()
        batches = [crowd.acquire(name, count) for name, count in self.ORDERS]
        return crowd, batches

    def test_same_seed_identical_deliveries_and_cost_table(self):
        import numpy as np

        crowd_a, batches_a = self._run_direct()
        crowd_b, batches_b = self._run_direct()
        for left, right in zip(batches_a, batches_b):
            assert np.array_equal(left.features, right.features)
            assert np.array_equal(left.labels, right.labels)
        assert [r.__dict__ for r in crowd_a.reports] == [
            r.__dict__ for r in crowd_b.reports
        ]
        assert crowd_a.derive_costs() == crowd_b.derive_costs()
        assert crowd_a.summary() == crowd_b.summary()

    def test_same_seed_identical_through_router_and_service(self):
        from repro.acquisition.budget import BudgetLedger
        from repro.acquisition.cost import UnitCost
        from repro.acquisition.service import AcquisitionService

        def run_routed():
            crowd = _fresh_simulator()
            service = AcquisitionService(
                {"crowdsourcing": crowd},
                cost_model=UnitCost(),
                ledger=BudgetLedger(total=1000.0),
            )
            summaries = [
                service.acquire(name, count).summary()
                for name, count in self.ORDERS
            ]
            return crowd, summaries

        crowd_a, summaries_a = run_routed()
        crowd_b, summaries_b = run_routed()
        assert summaries_a == summaries_b
        assert crowd_a.derive_costs() == crowd_b.derive_costs()
        # The routed campaign is the same campaign the direct API runs.
        crowd_direct, _ = self._run_direct()
        assert crowd_direct.derive_costs() == crowd_a.derive_costs()
        assert crowd_direct.summary() == crowd_a.summary()
