"""Tests for the acquisition request/fulfillment pipeline (service + router)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.budget import BudgetLedger
from repro.acquisition.cost import EscalatingCost, TableCost, UnitCost
from repro.acquisition.providers import ThrottledSource
from repro.acquisition.requests import AcquisitionRequest
from repro.acquisition.router import AcquisitionRouter
from repro.acquisition.service import AcquisitionService
from repro.acquisition.source import GeneratorDataSource, PoolDataSource
from repro.ml.data import Dataset
from repro.utils.exceptions import AcquisitionError, ConfigurationError


def make_pool(n: int, label: int = 0, n_features: int = 8) -> Dataset:
    rng = np.random.default_rng(n)
    return Dataset(rng.normal(size=(n, n_features)), np.full(n, label))


class TestAcquisitionRequest:
    def test_validation(self):
        with pytest.raises(AcquisitionError):
            AcquisitionRequest("a", -1)
        with pytest.raises(AcquisitionError):
            AcquisitionRequest("a", 5, max_cost=-2.0)
        with pytest.raises(AcquisitionError):
            AcquisitionRequest("a", 5, deadline_rounds=0)

    def test_count_coerced_to_int(self):
        assert AcquisitionRequest("a", 5.0).count == 5


class TestAcquisitionRouter:
    def test_single_provider_roundtrip(self, tiny_task):
        router = AcquisitionRouter(
            {"generator": GeneratorDataSource(tiny_task, random_state=0)}
        )
        delivery = router.fulfill("slice_0", 6)
        assert len(delivery.dataset) == 6
        assert delivery.provenance == ("generator",)
        assert delivery.rounds == 1

    def test_failover_within_one_round(self, tiny_task):
        router = AcquisitionRouter(
            {
                "pool": PoolDataSource({"slice_0": make_pool(4)}, random_state=0),
                "generator": GeneratorDataSource(tiny_task, random_state=1),
            }
        )
        delivery = router.fulfill("slice_0", 10)
        assert len(delivery.dataset) == 10
        assert delivery.contributions == {"pool": 4, "generator": 6}

    def test_multiple_rounds_fill_throttled_provider(self, tiny_task):
        throttled = ThrottledSource(
            GeneratorDataSource(tiny_task, random_state=0), per_request_cap=3
        )
        router = AcquisitionRouter({"throttled": throttled})
        delivery = router.fulfill("slice_0", 8, deadline_rounds=5)
        assert len(delivery.dataset) == 8
        assert delivery.rounds == 3  # 3 + 3 + 2

    def test_deadline_bounds_rounds(self, tiny_task):
        throttled = ThrottledSource(
            GeneratorDataSource(tiny_task, random_state=0), per_request_cap=3
        )
        router = AcquisitionRouter({"throttled": throttled})
        delivery = router.fulfill("slice_0", 10, deadline_rounds=2)
        assert len(delivery.dataset) == 6
        assert delivery.rounds == 2

    def test_dry_round_stops_early(self):
        router = AcquisitionRouter(
            {"pool": PoolDataSource({"a": make_pool(2)}, random_state=0)}
        )
        delivery = router.fulfill("a", 10, deadline_rounds=4)
        assert len(delivery.dataset) == 2
        assert delivery.rounds == 2  # the first dry round ends the attempt

    def test_per_slice_routes(self, tiny_task):
        generator_a = GeneratorDataSource(tiny_task, random_state=0)
        generator_b = GeneratorDataSource(tiny_task, random_state=1)
        router = AcquisitionRouter(
            {"a": generator_a, "b": generator_b},
            routes={"slice_1": "b"},
        )
        assert router.route("slice_1") == ("b",)
        assert router.route("slice_0") == ("a", "b")
        router.fulfill("slice_1", 5)
        assert generator_a.total_delivered == 0
        assert generator_b.total_delivered == 5

    def test_unknown_provider_in_route_rejected(self, tiny_task):
        generator = GeneratorDataSource(tiny_task, random_state=0)
        with pytest.raises(ConfigurationError):
            AcquisitionRouter({"g": generator}, routes={"slice_0": "nope"})
        router = AcquisitionRouter({"g": generator})
        with pytest.raises(ConfigurationError):
            router.set_route("slice_0", ("nope",))

    def test_all_providers_refusing_raises(self):
        router = AcquisitionRouter(
            {"pool": PoolDataSource({"a": make_pool(2)}, random_state=0)}
        )
        with pytest.raises(AcquisitionError):
            router.fulfill("b", 1)

    def test_available_sums_routed_providers(self, tiny_task):
        router = AcquisitionRouter(
            {
                "pool": PoolDataSource({"slice_0": make_pool(4)}, random_state=0),
                "generator": GeneratorDataSource(tiny_task, random_state=1),
            }
        )
        assert router.available("slice_0") is None
        only_pool = AcquisitionRouter(
            {"pool": PoolDataSource({"slice_0": make_pool(4)}, random_state=0)}
        )
        assert only_pool.available("slice_0") == 4


class TestAcquisitionService:
    def make_service(self, source, budget=1000.0, cost_model=None, sliced=None):
        return AcquisitionService(
            source,
            cost_model=cost_model or UnitCost(),
            ledger=BudgetLedger(total=budget),
            sliced=sliced,
        )

    def test_full_fulfillment(self, tiny_task):
        service = self.make_service(GeneratorDataSource(tiny_task, random_state=0))
        fulfillment = service.acquire("slice_0", 7)
        assert fulfillment.status == "fulfilled"
        assert fulfillment.delivered_count == 7
        assert fulfillment.shortfall == 0
        assert fulfillment.cost == pytest.approx(7.0)
        assert service.ledger.spent == pytest.approx(7.0)

    def test_partial_fulfillment_charges_delivered_only(self):
        service = self.make_service(
            PoolDataSource({"a": make_pool(4)}, random_state=0)
        )
        fulfillment = service.acquire("a", 10)
        assert fulfillment.status == "partial"
        assert fulfillment.delivered_count == 4
        assert fulfillment.shortfall == 6
        assert service.ledger.spent == pytest.approx(4.0)

    def test_empty_fulfillment_from_dry_pool(self):
        source = PoolDataSource({"a": make_pool(3)}, random_state=0)
        service = self.make_service(source)
        service.acquire("a", 3)
        fulfillment = service.acquire("a", 5)
        assert fulfillment.status == "empty"
        assert fulfillment.delivered_count == 0
        assert service.ledger.spent == pytest.approx(3.0)

    def test_budget_cap_produces_skipped_not_error(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=0)
        service = self.make_service(source, budget=5.0)
        first = service.acquire("slice_0", 5)
        assert first.status == "fulfilled"
        second = service.acquire("slice_0", 3)
        assert second.status == "skipped"
        assert second.rounds == 0
        assert source.total_delivered == 5  # the skipped request never reached it

    def test_budget_cap_truncates_oversized_request(self, tiny_task):
        service = self.make_service(
            GeneratorDataSource(tiny_task, random_state=0), budget=6.0
        )
        fulfillment = service.acquire("slice_0", 50)
        assert fulfillment.effective_count == 6
        assert fulfillment.delivered_count == 6
        assert fulfillment.status == "fulfilled"  # filled to the effective count

    def test_max_cost_caps_effective_count(self, tiny_task):
        service = self.make_service(
            GeneratorDataSource(tiny_task, random_state=0),
            cost_model=TableCost({"slice_0": 2.0}),
        )
        fulfillment = service.acquire("slice_0", 50, max_cost=7.0)
        assert fulfillment.effective_count == 3  # floor(7 / 2)
        assert fulfillment.cost == pytest.approx(6.0)

    def test_submit_preserves_order_and_fires_callbacks(self, tiny_task):
        service = self.make_service(GeneratorDataSource(tiny_task, random_state=0))
        seen = []
        service.add_callback(lambda f: seen.append(f.slice_name))
        fulfillments = service.submit(
            [
                AcquisitionRequest("slice_0", 2),
                AcquisitionRequest("slice_1", 3),
                AcquisitionRequest("slice_2", 0),
            ]
        )
        assert [f.slice_name for f in fulfillments] == ["slice_0", "slice_1", "slice_2"]
        assert fulfillments[2].status == "skipped"
        assert seen == ["slice_0", "slice_1", "slice_2"]
        assert service.delivered_by_slice() == {
            "slice_0": 2, "slice_1": 3, "slice_2": 0,
        }

    def test_sliced_dataset_grows_with_deliveries(self, tiny_task):
        sliced = tiny_task.initial_sliced_dataset(
            initial_sizes=10, validation_size=10, random_state=0
        )
        before = sliced["slice_0"].size
        service = self.make_service(
            GeneratorDataSource(tiny_task, random_state=1), sliced=sliced
        )
        service.acquire("slice_0", 6)
        assert sliced["slice_0"].size == before + 6

    def test_escalating_cost_records_delivered_not_requested(self):
        """Satellite: delivered-not-requested semantics pinned end to end.

        A pool that comes back short still escalates (one non-empty batch was
        delivered), but a completely dry delivery must neither charge the
        ledger nor advance the escalation schedule — requested counts never
        leak into the cost model.
        """
        cost_model = EscalatingCost({"a": 1.0}, escalation=0.5)
        source = PoolDataSource({"a": make_pool(4)}, random_state=0)
        service = AcquisitionService(
            source, cost_model=cost_model, ledger=BudgetLedger(total=100.0)
        )
        short = service.acquire("a", 10)  # delivers 4 of 10
        assert short.delivered_count == 4
        assert service.ledger.spent == pytest.approx(4.0)
        assert cost_model.batches_recorded("a") == 1

        dry = service.acquire("a", 10)  # pool is empty now
        assert dry.delivered_count == 0
        assert service.ledger.spent == pytest.approx(4.0)
        assert cost_model.batches_recorded("a") == 1  # no phantom escalation

    def test_shortfall_by_slice_accumulates(self):
        service = self.make_service(
            PoolDataSource({"a": make_pool(4)}, random_state=0)
        )
        service.acquire("a", 10)
        service.acquire("a", 2)
        assert service.shortfall_by_slice() == {"a": 8}

    def test_release_payloads_keeps_accounting(self, tiny_task):
        service = self.make_service(GeneratorDataSource(tiny_task, random_state=0))
        service.acquire("slice_0", 6)
        service.acquire("slice_1", 3)
        summaries_before = [f.summary() for f in service.fulfillments]
        assert service.release_payloads() == 2
        assert all(f.delivered is None for f in service.fulfillments)
        assert [f.summary() for f in service.fulfillments] == summaries_before
        assert service.delivered_by_slice() == {"slice_0": 6, "slice_1": 3}
        assert service.release_payloads() == 0  # idempotent
