"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_length_match,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects_non_positive_and_non_finite(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_error_message_names_parameter(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_in_range(5.0, "my_param", 0.0, 1.0)


class TestCheckLengthMatch:
    def test_matching_lengths_pass(self):
        check_length_match([1, 2], [3, 4], "a", "b")

    def test_mismatch_raises_with_both_names(self):
        with pytest.raises(ConfigurationError, match="a and b"):
            check_length_match([1], [1, 2], "a", "b")


class TestIntChecks:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -2, 1.5])
    def test_positive_int_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive_int(value, "n")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "n")
