"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    sample_without_replacement,
    shuffled_indices,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9, size=8)
        b = as_generator(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_generator(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawnGenerators:
    def test_count_respected(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 2)
        a = children[0].integers(0, 10**9, size=10)
        b = children[1].integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(9, 3)]
        b = [g.integers(0, 10**9) for g in spawn_generators(9, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestSamplingHelpers:
    def test_shuffled_indices_is_permutation(self):
        indices = shuffled_indices(10, random_state=0)
        assert sorted(indices.tolist()) == list(range(10))

    def test_sample_without_replacement_unique(self):
        sample = sample_without_replacement(50, 20, random_state=0)
        assert len(set(sample.tolist())) == 20

    def test_sample_too_large_raises(self):
        with pytest.raises(ValueError):
            sample_without_replacement(5, 6)
