"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.utils.exceptions import (
    AcquisitionError,
    BudgetError,
    ConfigurationError,
    FittingError,
    OptimizationError,
    ReproError,
    SlicingError,
)

ALL_ERRORS = [
    ConfigurationError,
    SlicingError,
    FittingError,
    OptimizationError,
    BudgetError,
    AcquisitionError,
]


class TestExceptionHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_catchable_as_base_class(self, error_cls):
        with pytest.raises(ReproError):
            raise error_cls("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_message_preserved(self):
        error = BudgetError("out of budget")
        assert "out of budget" in str(error)
