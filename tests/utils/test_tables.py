"""Tests for repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["beta", 2]])
        assert "name" in text and "value" in text
        assert "alpha" in text and "beta" in text

    def test_floats_formatted_with_four_decimals(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_title_is_first_line(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_columns_are_aligned(self):
        text = format_table(["col", "x"], [["short", 1], ["much longer cell", 2]])
        header, separator, *rows = text.splitlines()
        assert len(header) == len(rows[0]) == len(rows[1])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_series_names_and_points_rendered(self):
        text = format_series(
            {"curve": [(1.0, 2.0), (2.0, 1.5)]}, x_label="size", y_label="loss"
        )
        assert "[curve]" in text
        assert "size" in text and "loss" in text
        assert "1.0000 -> 2.0000" in text

    def test_multiple_series(self):
        text = format_series({"a": [(1, 1)], "b": [(2, 2)]})
        assert "[a]" in text and "[b]" in text

    def test_title(self):
        text = format_series({"a": [(0, 0)]}, title="Figure 10")
        assert text.splitlines()[0] == "Figure 10"
