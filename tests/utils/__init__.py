"""Test package."""
