"""Property-based tests for the baseline allocation strategies."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    proportional_allocation,
    uniform_allocation,
    water_filling_allocation,
)
from repro.core.imbalance import imbalance_ratio


@st.composite
def allocation_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    sizes = draw(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=n, max_size=n)
    )
    costs = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    budget = draw(st.floats(min_value=0.0, max_value=3000.0))
    return np.array(sizes), np.array(costs), budget


ALL_BASELINES = [uniform_allocation, water_filling_allocation, proportional_allocation]


class TestBaselineInvariants:
    @given(inputs=allocation_inputs())
    @settings(max_examples=40, deadline=None)
    def test_never_exceed_budget(self, inputs):
        sizes, costs, budget = inputs
        for baseline in ALL_BASELINES:
            allocation = baseline(sizes, budget, costs)
            assert np.all(allocation >= 0)
            assert float(np.dot(costs, allocation)) <= budget + 1e-6

    @given(inputs=allocation_inputs())
    @settings(max_examples=40, deadline=None)
    def test_spend_nearly_everything(self, inputs):
        sizes, costs, budget = inputs
        for baseline in ALL_BASELINES:
            allocation = baseline(sizes, budget, costs)
            spent = float(np.dot(costs, allocation))
            assert spent >= budget - float(costs.max()) - 1e-6

    @given(inputs=allocation_inputs())
    @settings(max_examples=30, deadline=None)
    def test_water_filling_does_not_worsen_imbalance_beyond_granularity(self, inputs):
        # Water filling levels slice sizes, so the imbalance ratio should not
        # grow except for the unavoidable +/- a-few-examples granularity when
        # leftover budget is distributed (relevant only for tiny slices).
        sizes, costs, budget = inputs
        allocation = water_filling_allocation(sizes, budget, costs)
        before = imbalance_ratio(sizes)
        after = imbalance_ratio(sizes + allocation)
        granularity = (1.0 + len(sizes)) / float(sizes.min())
        assert after <= before + granularity + 1e-9

    @given(inputs=allocation_inputs())
    @settings(max_examples=30, deadline=None)
    def test_uniform_counts_are_nearly_equal_with_unit_costs(self, inputs):
        sizes, _, budget = inputs
        allocation = uniform_allocation(sizes, budget, None)
        if len(allocation) > 1:
            assert allocation.max() - allocation.min() <= max(1, len(sizes))
