"""Property-based tests for the data containers and the budget ledger."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acquisition.budget import BudgetLedger
from repro.ml.data import Dataset, train_validation_split
from repro.slices.validation import imbalance_ratio
from repro.utils.exceptions import BudgetError


@st.composite
def datasets(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    d = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, d)), rng.integers(0, k, size=n))


class TestDatasetProperties:
    @given(dataset=datasets(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_shuffle_preserves_multiset_of_labels(self, dataset, seed):
        shuffled = dataset.shuffle(random_state=seed)
        assert sorted(shuffled.labels.tolist()) == sorted(dataset.labels.tolist())

    @given(dataset=datasets(), size=st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_sample_size_clamped(self, dataset, size):
        sample = dataset.sample(size, random_state=0)
        assert len(sample) == min(size, len(dataset))

    @given(dataset=datasets(), fraction=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_split_sizes_sum(self, dataset, fraction):
        train, validation = train_validation_split(dataset, fraction, random_state=0)
        assert len(train) + len(validation) == len(dataset)

    @given(dataset=datasets())
    @settings(max_examples=30, deadline=None)
    def test_concatenate_with_empty_is_identity(self, dataset):
        combined = Dataset.concatenate([dataset, Dataset.empty(dataset.n_features)])
        assert len(combined) == len(dataset)


class TestImbalanceRatioProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=12)
    )
    def test_at_least_one(self, sizes):
        assert imbalance_ratio(sizes) >= 1.0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=12),
        scale=st.integers(min_value=1, max_value=50),
    )
    def test_scale_invariance(self, sizes, scale):
        scaled = [s * scale for s in sizes]
        assert imbalance_ratio(scaled) == pytest.approx(imbalance_ratio(sizes))


class TestBudgetLedgerProperties:
    @given(
        total=st.floats(min_value=0.0, max_value=1000.0),
        charges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0.1, max_value=3.0),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_spent_never_exceeds_total(self, total, charges):
        ledger = BudgetLedger(total=total)
        for count, unit_cost in charges:
            try:
                ledger.charge("s", count, unit_cost)
            except BudgetError:
                continue
        assert ledger.spent <= total + ledger.tolerance + 1e-9
        assert ledger.remaining >= 0.0
        assert sum(ledger.acquired_by_slice().values()) == sum(
            charge.count for charge in ledger.charges
        )
