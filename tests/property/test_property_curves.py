"""Property-based tests for the learning-curve machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves.fitting import fit_power_law, weighted_log_rmse
from repro.curves.power_law import PowerLawCurve
from repro.curves.reliability import average_curves

positive_b = st.floats(min_value=0.05, max_value=50.0, allow_nan=False)
exponent = st.floats(min_value=0.01, max_value=2.0, allow_nan=False)
sizes_strategy = st.lists(
    st.integers(min_value=5, max_value=5000), min_size=3, max_size=12, unique=True
)


class TestPowerLawProperties:
    @given(b=positive_b, a=exponent, size=st.floats(min_value=1.0, max_value=1e6))
    def test_predictions_are_positive(self, b, a, size):
        assert PowerLawCurve(b=b, a=a).predict(size) > 0

    @given(b=positive_b, a=exponent)
    def test_monotonically_non_increasing(self, b, a):
        curve = PowerLawCurve(b=b, a=a)
        sizes = np.logspace(0.5, 5, 20)
        predictions = np.asarray(curve.predict(sizes))
        assert np.all(np.diff(predictions) <= 1e-12)

    @given(b=positive_b, a=exponent)
    def test_size_for_loss_round_trip(self, b, a):
        curve = PowerLawCurve(b=b, a=a)
        loss = curve.predict(321.0)
        assert curve.size_for_loss(loss) == pytest.approx(321.0, rel=1e-6)


class TestFittingProperties:
    @given(b=positive_b, a=exponent, sizes=sizes_strategy)
    @settings(max_examples=40, deadline=None)
    def test_exact_recovery_of_noise_free_curves(self, b, a, sizes):
        sizes = np.array(sorted(sizes), dtype=float)
        losses = b * sizes**-a
        curve = fit_power_law(sizes, losses)
        assert curve.a == pytest.approx(a, rel=1e-3, abs=1e-4)
        assert curve.b == pytest.approx(b, rel=1e-2)
        assert weighted_log_rmse(curve, sizes, losses) < 1e-6

    @given(
        b=positive_b,
        a=exponent,
        sizes=sizes_strategy,
        noise=st.floats(min_value=0.0, max_value=0.15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_fit_is_always_a_valid_curve(self, b, a, sizes, noise, seed):
        rng = np.random.default_rng(seed)
        sizes = np.array(sorted(sizes), dtype=float)
        losses = b * sizes**-a * np.exp(rng.normal(0, noise, size=len(sizes)))
        curve = fit_power_law(sizes, losses)
        assert curve.a > 0 and curve.b > 0
        assert np.isfinite(curve.predict(10_000))


class TestAveragingProperties:
    @given(
        parameters=st.lists(
            st.tuples(positive_b, exponent), min_size=1, max_size=6
        )
    )
    def test_average_parameters_within_input_range(self, parameters):
        curves = [PowerLawCurve(b=b, a=a) for b, a in parameters]
        averaged = average_curves(curves)
        a_values = [c.a for c in curves]
        b_values = [c.b for c in curves]
        assert min(a_values) - 1e-9 <= averaged.a <= max(a_values) + 1e-9
        assert min(b_values) - 1e-9 <= averaged.b <= max(b_values) + 1e-9
