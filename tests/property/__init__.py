"""Test package."""
