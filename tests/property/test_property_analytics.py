"""Property test: every analytics SQL view equals its Python reference.

Hypothesis builds randomized multi-campaign event logs — interleaved
generations (including stale ones arriving after newer ones), mid-run
reslices, failed/paused campaigns, empty campaigns, missing
curve-parameter payloads — and checks every SQL view row-for-row against
the pure-Python reference, plus the incremental-refresh == full-rebuild
byte identity at a random split point of the event stream.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import Analytics, assert_consistent
from repro.campaigns.store import CampaignRecord, InMemoryStore

_STATUSES = ("pending", "running", "paused", "completed", "failed")
_SLICES = ("s0", "s1", "s2", "s3")

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def event_logs(draw):
    """(campaign descriptions, interleaved event stream) for a store."""
    n_campaigns = draw(st.integers(min_value=1, max_value=3))
    campaigns = []
    for i in range(n_campaigns):
        campaigns.append(
            {
                "campaign_id": f"c-{i}",
                "priority": draw(st.integers(min_value=0, max_value=2)),
                "budget": draw(finite.filter(lambda b: b >= 0.0)),
                "status": draw(st.sampled_from(_STATUSES)),
            }
        )
    ids = [c["campaign_id"] for c in campaigns]
    events = []
    used: set[tuple] = set()
    for _ in range(draw(st.integers(min_value=0, max_value=20))):
        cid = draw(st.sampled_from(ids))
        kind = draw(
            st.sampled_from(("iteration", "iteration", "fulfillment", "reslice"))
        )
        generation = draw(st.integers(min_value=0, max_value=2))
        iteration = draw(st.integers(min_value=0, max_value=4))
        # The stores themselves never write two events with the same
        # (campaign, kind, iteration, generation) key; mirroring that
        # invariant keeps replay order well-defined.
        key = (cid, kind, iteration, generation)
        if key in used:
            continue
        used.add(key)
        if kind == "iteration":
            names = draw(
                st.lists(
                    st.sampled_from(_SLICES), min_size=0, max_size=3, unique=True
                )
            )
            payload = {
                "iteration": iteration,
                "acquired": {
                    name: draw(st.integers(min_value=0, max_value=50))
                    for name in names
                },
                "spent": draw(finite),
                "limit": draw(finite),
                "imbalance_before": draw(finite),
                "imbalance_after": draw(finite),
            }
            if names and draw(st.booleans()):
                payload["curve_parameters"] = {
                    name: [draw(finite), draw(finite)] for name in names
                }
        elif kind == "fulfillment":
            effective = draw(st.integers(min_value=0, max_value=20))
            delivered = draw(st.integers(min_value=0, max_value=effective))
            providers = draw(
                st.lists(
                    st.sampled_from(("pool", "synth", "label")),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            payload = {
                "slice": draw(st.sampled_from(_SLICES)),
                "requested": draw(st.integers(min_value=0, max_value=20)),
                "effective": effective,
                "delivered": delivered,
                "shortfall": effective - delivered,
                "unit_cost": draw(finite),
                "cost": draw(finite),
                "provenance": providers,
                "contributions": {p: 1 for p in providers},
                "rounds": len(providers),
                "status": draw(
                    st.sampled_from(("fulfilled", "partial", "empty", "skipped"))
                ),
                "tag": f"iteration:{iteration}",
            }
        else:
            payload = {
                "slice_generation": draw(st.integers(min_value=0, max_value=3)),
                "method": draw(st.sampled_from(("kmeans", "decision_tree"))),
                "fingerprint": draw(st.sampled_from(("fp-a", "fp-b"))),
                "slice_names": list(
                    draw(
                        st.lists(
                            st.sampled_from(_SLICES),
                            min_size=1,
                            max_size=4,
                            unique=True,
                        )
                    )
                ),
            }
        events.append((cid, generation, iteration, kind, payload))
    split = draw(st.integers(min_value=0, max_value=len(events)))
    return campaigns, events, split


def _build_store(campaigns, events):
    store = InMemoryStore()
    for index, c in enumerate(campaigns):
        store.create_campaign(
            CampaignRecord(
                campaign_id=c["campaign_id"],
                name=c["campaign_id"],
                fingerprint=f"fp-{c['campaign_id']}",
                spec={"name": c["campaign_id"], "budget": c["budget"]},
                status="pending",
                priority=c["priority"],
                created_at=1000.0 + index,
            )
        )
    for cid, generation, iteration, kind, payload in events:
        store.append_event(
            cid, generation=generation, iteration=iteration, kind=kind,
            payload=payload,
        )
    for c in campaigns:
        store.set_status(c["campaign_id"], c["status"])
    return store


class TestAnalyticsProperties:
    @given(log=event_logs())
    @settings(max_examples=40, deadline=None)
    def test_every_view_matches_the_reference(self, log):
        campaigns, events, _split = log
        store = _build_store(campaigns, events)
        counts = assert_consistent(store)
        # Every campaign appears in the rollup and fulfillment views even
        # when it produced no events at all.
        assert counts["campaign_rollup"] == len(campaigns)
        assert counts["fulfillment_rates"] == len(campaigns)

    @given(log=event_logs())
    @settings(max_examples=25, deadline=None)
    def test_incremental_refresh_equals_rebuild(self, log):
        campaigns, events, split = log
        store = _build_store(campaigns, events[:split])
        with Analytics(store, path=":memory:") as analytics:
            analytics.refresh()
            for cid, generation, iteration, kind, payload in events[split:]:
                store.append_event(
                    cid, generation=generation, iteration=iteration, kind=kind,
                    payload=payload,
                )
            analytics.refresh()
            kinds = ("summary", "slices", "fulfillment", "fairness", "cache")
            incremental = json.dumps(
                [analytics.report(kind) for kind in kinds], sort_keys=True
            )
            analytics.rebuild()
            rebuilt = json.dumps(
                [analytics.report(kind) for kind in kinds], sort_keys=True
            )
            assert incremental == rebuilt
            assert_consistent(store, analytics)
