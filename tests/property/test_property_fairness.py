"""Property-based tests for the fairness metrics (Definition 1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fairness.metrics import (
    average_equalized_error_rates,
    max_equalized_error_rates,
    unfairness,
)

losses_strategy = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=15,
)
overall_strategy = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


class TestUnfairnessProperties:
    @given(losses=losses_strategy, overall=overall_strategy)
    def test_non_negative(self, losses, overall):
        assert unfairness(losses, overall) >= 0.0

    @given(losses=losses_strategy, overall=overall_strategy)
    def test_avg_bounded_by_max(self, losses, overall):
        assert average_equalized_error_rates(losses, overall) <= (
            max_equalized_error_rates(losses, overall) + 1e-12
        )

    @given(overall=overall_strategy, n=st.integers(min_value=1, max_value=10))
    def test_zero_when_all_slices_equal_overall(self, overall, n):
        assert unfairness([overall] * n, overall) == pytest.approx(0.0)

    @given(losses=losses_strategy, overall=overall_strategy, shift=st.floats(min_value=-2, max_value=2, allow_nan=False))
    def test_translation_invariance(self, losses, overall, shift):
        """Shifting every loss and the overall loss by the same amount keeps
        the unfairness unchanged (it only depends on differences)."""
        shifted = [loss + shift for loss in losses]
        assert unfairness(shifted, overall + shift) == pytest.approx(
            unfairness(losses, overall), abs=1e-9
        )

    @given(losses=losses_strategy, overall=overall_strategy)
    def test_permutation_invariance(self, losses, overall):
        permuted = list(reversed(losses))
        assert unfairness(permuted, overall) == pytest.approx(
            unfairness(losses, overall)
        )

    @given(losses=losses_strategy, overall=overall_strategy)
    def test_max_is_attained_by_some_slice(self, losses, overall):
        value = max_equalized_error_rates(losses, overall)
        deviations = [abs(loss - overall) for loss in losses]
        assert value == pytest.approx(max(deviations))
