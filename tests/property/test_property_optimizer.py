"""Property-based tests for the selective data acquisition optimizer."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import optimize_allocation, round_allocation, solve_greedy
from repro.core.problem import SelectiveAcquisitionProblem


@st.composite
def problems(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    sizes = draw(
        st.lists(st.integers(min_value=10, max_value=500), min_size=n, max_size=n)
    )
    costs = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    b = draw(
        st.lists(
            st.floats(min_value=0.2, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    a = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.2, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    budget = draw(st.floats(min_value=10.0, max_value=2000.0))
    lam = draw(st.sampled_from([0.0, 0.1, 1.0, 10.0]))
    return SelectiveAcquisitionProblem(
        slice_names=tuple(f"s{i}" for i in range(n)),
        sizes=np.array(sizes, dtype=float),
        costs=np.array(costs),
        b=np.array(b),
        a=np.array(a),
        budget=budget,
        lam=lam,
    )


class TestOptimizerInvariants:
    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_allocation_feasible_and_integer(self, problem):
        result = optimize_allocation(problem)
        assert np.all(result.allocation >= 0)
        assert result.allocation.dtype.kind == "i"
        assert float(np.dot(problem.costs, result.allocation)) <= problem.budget + 1e-6

    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_budget_nearly_exhausted(self, problem):
        result = optimize_allocation(problem)
        spent = float(np.dot(problem.costs, result.allocation))
        assert spent >= problem.budget - float(problem.costs.max()) - 1e-6

    @given(problem=problems())
    @settings(max_examples=25, deadline=None)
    def test_objective_not_worse_than_doing_nothing(self, problem):
        result = optimize_allocation(problem)
        baseline = problem.objective(np.zeros(problem.n_slices))
        achieved = problem.objective(result.allocation.astype(float))
        assert achieved <= baseline + 1e-9

    @given(problem=problems())
    @settings(max_examples=15, deadline=None)
    def test_greedy_allocation_feasible(self, problem):
        allocation = solve_greedy(problem, n_chunks=50)
        assert np.all(allocation >= -1e-9)
        assert float(np.dot(problem.costs, allocation)) <= problem.budget + 1e-6

    @given(problem=problems(), scale=st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=15, deadline=None)
    def test_rounding_any_continuous_point_is_feasible(self, problem, scale):
        continuous = np.full(problem.n_slices, scale * problem.budget / problem.n_slices)
        rounded = round_allocation(problem, continuous)
        assert np.all(rounded >= 0)
        assert float(np.dot(problem.costs, rounded)) <= problem.budget + 1e-6
