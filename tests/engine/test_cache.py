"""Tests for repro.engine.cache: the result cache and the curve cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import CurveCache, InMemoryResultCache
from repro.engine.factories import get_model_factory
from repro.engine.job import TrainingJob, run_training_job
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def job(rng) -> TrainingJob:
    dataset = Dataset(rng.normal(size=(30, 4)), rng.integers(0, 2, size=30))
    return TrainingJob(
        train=dataset,
        n_classes=2,
        seed=3,
        trainer_config=TrainingConfig(epochs=2),
        model_factory=get_model_factory("softmax"),
        factory_name="softmax",
    )


class TestInMemoryResultCache:
    def test_miss_then_hit(self, job):
        cache = InMemoryResultCache()
        assert cache.get(job.fingerprint) is None
        cache.put(job.fingerprint, run_training_job(job))
        served = cache.get(job.fingerprint)
        assert served is not None and served.from_cache
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_returns_independent_copy(self, job):
        cache = InMemoryResultCache()
        cache.put(job.fingerprint, run_training_job(job))
        first = cache.get(job.fingerprint)
        first.model.weights[...] = 0.0
        second = cache.get(job.fingerprint)
        assert not np.allclose(second.model.weights, 0.0)

    def test_lru_eviction(self, job):
        cache = InMemoryResultCache(max_entries=2)
        result = run_training_job(job)
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", result)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            InMemoryResultCache(max_entries=0)

    def test_clear_keeps_stats(self, job):
        cache = InMemoryResultCache()
        cache.put(job.fingerprint, run_training_job(job))
        cache.get(job.fingerprint)
        cache.clear()
        assert len(cache) == 0 and cache.stats.hits == 1

    def test_single_copy_per_hit(self, job, monkeypatch):
        """put() stores by reference; only get() pays one deepcopy per hit.

        The micro-benchmark guard for the double-deepcopy fix: counting
        calls is machine-independent where timing a 2x difference is not.
        """
        import repro.engine.cache as cache_module

        cache = InMemoryResultCache()
        result = run_training_job(job)
        calls = {"n": 0}
        real_deepcopy = cache_module.copy.deepcopy

        def counting_deepcopy(value, *args, **kwargs):
            calls["n"] += 1
            return real_deepcopy(value, *args, **kwargs)

        monkeypatch.setattr(cache_module.copy, "deepcopy", counting_deepcopy)
        cache.put(job.fingerprint, result)
        assert calls["n"] == 0
        cache.get(job.fingerprint)
        assert calls["n"] == 1
        cache.get(job.fingerprint)
        assert calls["n"] == 2


class TestCurveCache:
    def test_all_slices_stale_initially(self, tiny_sliced):
        cache = CurveCache()
        assert cache.stale_slices(tiny_sliced) == tiny_sliced.names

    def test_unchanged_slices_not_stale_after_update(
        self, tiny_sliced, fast_training, fast_curves
    ):
        from repro.curves.estimator import LearningCurveEstimator

        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        curves = estimator.estimate(tiny_sliced)
        cache = CurveCache()
        cache.stale_slices(tiny_sliced)
        cache.update(tiny_sliced, curves)
        assert cache.stale_slices(tiny_sliced) == []
        cached = cache.cached_curves(tiny_sliced.names)
        assert cached.keys() == curves.keys()

    def test_changed_pool_marks_only_that_slice_stale(
        self, tiny_sliced, tiny_source, fast_training, fast_curves
    ):
        from repro.curves.estimator import LearningCurveEstimator

        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        cache = CurveCache()
        cache.update(tiny_sliced, estimator.estimate(tiny_sliced))
        target = tiny_sliced.names[1]
        tiny_sliced.add_examples(target, tiny_source.acquire(target, 5))
        assert cache.stale_slices(tiny_sliced) == [target]

    def test_stats_count_transitions_not_polls(
        self, tiny_sliced, tiny_source, fast_training, fast_curves
    ):
        """Re-polling an unchanged dataset must not inflate hit/miss counts."""
        from repro.curves.estimator import LearningCurveEstimator

        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        cache = CurveCache()
        # First sight of each slice: one miss per slice, however often polled.
        for _ in range(5):
            cache.stale_slices(tiny_sliced)
        assert cache.stats.misses == len(tiny_sliced.names)
        assert cache.stats.hits == 0
        cache.update(tiny_sliced, estimator.estimate(tiny_sliced))
        # The cached state was already counted for these fingerprints:
        # serving it on re-polls adds nothing.
        for _ in range(5):
            assert cache.stale_slices(tiny_sliced) == []
        assert cache.stats.misses == len(tiny_sliced.names)
        assert cache.stats.hits == 0
        # A pool change is a new transition: exactly one fresh miss.
        target = tiny_sliced.names[1]
        tiny_sliced.add_examples(target, tiny_source.acquire(target, 5))
        for _ in range(3):
            assert cache.stale_slices(tiny_sliced) == [target]
        assert cache.stats.misses == len(tiny_sliced.names) + 1
