"""Tests for repro.engine.cache: the result cache and the curve cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import CurveCache, InMemoryResultCache
from repro.engine.factories import get_model_factory
from repro.engine.job import TrainingJob, run_training_job
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def job(rng) -> TrainingJob:
    dataset = Dataset(rng.normal(size=(30, 4)), rng.integers(0, 2, size=30))
    return TrainingJob(
        train=dataset,
        n_classes=2,
        seed=3,
        trainer_config=TrainingConfig(epochs=2),
        model_factory=get_model_factory("softmax"),
        factory_name="softmax",
    )


class TestInMemoryResultCache:
    def test_miss_then_hit(self, job):
        cache = InMemoryResultCache()
        assert cache.get(job.fingerprint) is None
        cache.put(job.fingerprint, run_training_job(job))
        served = cache.get(job.fingerprint)
        assert served is not None and served.from_cache
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_returns_independent_copy(self, job):
        cache = InMemoryResultCache()
        cache.put(job.fingerprint, run_training_job(job))
        first = cache.get(job.fingerprint)
        first.model.weights[...] = 0.0
        second = cache.get(job.fingerprint)
        assert not np.allclose(second.model.weights, 0.0)

    def test_lru_eviction(self, job):
        cache = InMemoryResultCache(max_entries=2)
        result = run_training_job(job)
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", result)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            InMemoryResultCache(max_entries=0)

    def test_clear_keeps_stats(self, job):
        cache = InMemoryResultCache()
        cache.put(job.fingerprint, run_training_job(job))
        cache.get(job.fingerprint)
        cache.clear()
        assert len(cache) == 0 and cache.stats.hits == 1


class TestCurveCache:
    def test_all_slices_stale_initially(self, tiny_sliced):
        cache = CurveCache()
        assert cache.stale_slices(tiny_sliced) == tiny_sliced.names

    def test_unchanged_slices_not_stale_after_update(
        self, tiny_sliced, fast_training, fast_curves
    ):
        from repro.curves.estimator import LearningCurveEstimator

        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        curves = estimator.estimate(tiny_sliced)
        cache = CurveCache()
        cache.stale_slices(tiny_sliced)
        cache.update(tiny_sliced, curves)
        assert cache.stale_slices(tiny_sliced) == []
        cached = cache.cached_curves(tiny_sliced.names)
        assert cached.keys() == curves.keys()

    def test_changed_pool_marks_only_that_slice_stale(
        self, tiny_sliced, tiny_source, fast_training, fast_curves
    ):
        from repro.curves.estimator import LearningCurveEstimator

        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        cache = CurveCache()
        cache.update(tiny_sliced, estimator.estimate(tiny_sliced))
        target = tiny_sliced.names[1]
        tiny_sliced.add_examples(target, tiny_source.acquire(target, 5))
        assert cache.stale_slices(tiny_sliced) == [target]
