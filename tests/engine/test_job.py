"""Tests for repro.engine.job: specs, fingerprints, and the worker function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.factories import describe_factory, get_model_factory
from repro.engine.job import (
    TrainingJob,
    fingerprint_dataset,
    run_training_job,
    stable_seed,
)
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig


@pytest.fixture
def dataset(rng) -> Dataset:
    return Dataset(rng.normal(size=(30, 4)), rng.integers(0, 2, size=30))


def make_job(dataset, **overrides) -> TrainingJob:
    defaults = dict(
        train=dataset,
        n_classes=2,
        seed=7,
        trainer_config=TrainingConfig(epochs=3),
        model_factory=get_model_factory("softmax"),
        factory_name="softmax",
    )
    defaults.update(overrides)
    return TrainingJob(**defaults)


class TestFingerprints:
    def test_dataset_fingerprint_is_content_addressed(self, dataset):
        same = Dataset(dataset.features.copy(), dataset.labels.copy())
        assert fingerprint_dataset(dataset) == fingerprint_dataset(same)

    def test_dataset_fingerprint_changes_with_content(self, dataset):
        changed = Dataset(dataset.features + 1e-9, dataset.labels)
        assert fingerprint_dataset(dataset) != fingerprint_dataset(changed)

    def test_job_fingerprint_stable_across_instances(self, dataset):
        assert make_job(dataset).fingerprint == make_job(dataset).fingerprint

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": 8},
            {"n_classes": 3},
            {"trainer_config": TrainingConfig(epochs=4)},
            {"factory_name": "mlp", "model_factory": get_model_factory("mlp")},
        ],
    )
    def test_job_fingerprint_sensitive_to_spec(self, dataset, overrides):
        assert make_job(dataset).fingerprint != make_job(dataset, **overrides).fingerprint

    def test_tag_not_fingerprinted(self, dataset):
        assert (
            make_job(dataset, tag="a").fingerprint
            == make_job(dataset, tag="b").fingerprint
        )

    def test_stable_seed_is_process_stable_and_63_bit(self):
        assert stable_seed(1, "x") == stable_seed(1, "x")
        assert stable_seed(1, "x") != stable_seed(1, "y")
        assert 0 <= stable_seed(123, "abc") < 2**63


class TestRunTrainingJob:
    def test_returns_trained_model_and_result(self, dataset):
        result = run_training_job(make_job(dataset))
        assert result.training.epochs_run == 3
        assert not result.from_cache
        assert result.model.predict(dataset.features).shape == (len(dataset),)

    def test_same_job_same_weights(self, dataset):
        first = run_training_job(make_job(dataset))
        second = run_training_job(make_job(dataset))
        np.testing.assert_array_equal(first.model.weights, second.model.weights)

    def test_factory_resolved_by_name_when_callable_missing(self, dataset):
        job = make_job(dataset, model_factory=None, factory_name="softmax")
        result = run_training_job(job)
        assert result.training.epochs_run == 3


class TestDescribeFactory:
    def test_registered_factory_resolves_to_registry_name(self):
        assert describe_factory(get_model_factory("softmax")) == "softmax"

    def test_plain_function_uses_qualname(self):
        def my_factory(n_classes):
            return None

        assert "my_factory" in describe_factory(my_factory)

    def test_dataclass_factory_uses_repr(self):
        from repro.engine.factories import MLPFactory

        name = describe_factory(MLPFactory(hidden_sizes=(8,)))
        assert "MLPFactory" in name and "8" in name

    def test_none_is_named(self):
        assert describe_factory(None) == "<none>"
