"""Tests for repro.engine.diskcache: the persistent shared cache.

Covers the contract the in-memory caches cannot offer — results surviving
process restarts, two processes sharing one WAL file without corrupting it
or retraining each other's work, kill -9 crash-safety mid-``put``, and the
degrade-to-a-miss guarantees for corrupted or version-mismatched blobs.
"""

from __future__ import annotations

import os
import pickle
import signal
import sqlite3
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.engine.cache import CacheStats, ResultCache
from repro.engine.diskcache import (
    RESULT_SCHEMA,
    SqliteCurveCache,
    SqliteResultCache,
)
from repro.engine.executor import ProcessPoolExecutor, SerialExecutor
from repro.engine.factories import get_model_factory
from repro.engine.job import TrainingJob, run_training_job
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.utils.exceptions import ConfigurationError

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _job(rng, seed: int = 3) -> TrainingJob:
    dataset = Dataset(rng.normal(size=(30, 4)), rng.integers(0, 2, size=30))
    return TrainingJob(
        train=dataset,
        n_classes=2,
        seed=seed,
        trainer_config=TrainingConfig(epochs=2),
        model_factory=get_model_factory("softmax"),
        factory_name="softmax",
    )


@pytest.fixture
def cache_path(tmp_path) -> str:
    return str(tmp_path / "cache.sqlite")


class TestSqliteResultCache:
    def test_implements_protocol(self, cache_path):
        with SqliteResultCache(cache_path) as cache:
            assert isinstance(cache, ResultCache)

    def test_miss_then_hit(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            assert cache.get(job.fingerprint) is None
            result = run_training_job(job)
            result.fingerprint = job.fingerprint
            cache.put(job.fingerprint, result)
            served = cache.get(job.fingerprint)
            assert served is not None and served.from_cache
            assert len(cache) == 1 and job.fingerprint in cache
            stats = cache.stats
            assert stats.hits == 1 and stats.misses == 1

    def test_hit_survives_restart_byte_identical(self, rng, cache_path):
        job = _job(rng)
        result = run_training_job(job)
        result.fingerprint = job.fingerprint
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, result)
        # A fresh handle is what a restarted process sees.
        with SqliteResultCache(cache_path) as reopened:
            served = reopened.get(job.fingerprint)
        assert served is not None and served.from_cache
        assert pickle.dumps(served.model) == pickle.dumps(result.model)
        assert pickle.dumps(served.training) == pickle.dumps(result.training)

    def test_hit_returns_independent_copy(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, run_training_job(job))
            first = cache.get(job.fingerprint)
            first.model.weights[...] = 0.0
            second = cache.get(job.fingerprint)
            assert not np.allclose(second.model.weights, 0.0)

    def test_corrupted_blob_degrades_to_miss(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, run_training_job(job))
        with sqlite3.connect(cache_path) as conn:
            conn.execute(
                "UPDATE results SET payload = ?", (b"\x80\x04 not a pickle",)
            )
        with SqliteResultCache(cache_path) as cache:
            assert cache.get(job.fingerprint) is None
            # The poisoned row was dropped, so the slot can be refilled.
            assert len(cache) == 0
            result = run_training_job(job)
            cache.put(job.fingerprint, result)
            assert cache.get(job.fingerprint) is not None

    def test_version_mismatch_degrades_to_miss(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, run_training_job(job))
        with sqlite3.connect(cache_path) as conn:
            conn.execute(
                "UPDATE results SET schema = ?", (RESULT_SCHEMA + "-future",)
            )
        with SqliteResultCache(cache_path) as cache:
            assert cache.get(job.fingerprint) is None
            assert len(cache) == 0

    def test_wrong_type_payload_degrades_to_miss(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, run_training_job(job))
        with sqlite3.connect(cache_path) as conn:
            conn.execute(
                "UPDATE results SET payload = ?",
                (pickle.dumps({"not": "a JobResult"}),),
            )
        with SqliteResultCache(cache_path) as cache:
            assert cache.get(job.fingerprint) is None

    def test_unpicklable_result_served_front_only(self, rng, cache_path):
        job = _job(rng)
        result = run_training_job(job)
        result.tag = lambda: None  # closures cannot pickle
        with SqliteResultCache(cache_path) as cache:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                cache.put(job.fingerprint, result)
            assert cache.get(job.fingerprint) is not None
            assert len(cache) == 0  # nothing reached the disk tier
        with SqliteResultCache(cache_path) as reopened:
            assert reopened.get(job.fingerprint) is None

    def test_memory_front_lru_eviction_counts(self, rng, cache_path):
        result = run_training_job(_job(rng))
        with SqliteResultCache(cache_path, memory_entries=2) as cache:
            for key in ("a", "b", "c"):
                cache.put(key, result)
            tiers = cache.tier_stats()
            assert tiers["memory"].evictions == 1
            # Evicted from the front only: the disk tier still serves it.
            assert cache.get("a") is not None

    def test_invalid_capacity_rejected(self, cache_path):
        with pytest.raises(ConfigurationError):
            SqliteResultCache(cache_path, memory_entries=0)

    def test_stats_aggregate_across_handles(self, rng, cache_path):
        """Counters live in the file: every process's lookups are visible."""
        job = _job(rng)
        first = SqliteResultCache(cache_path)
        first.put(job.fingerprint, run_training_job(job))
        second = SqliteResultCache(cache_path)
        assert second.get(job.fingerprint) is not None  # disk hit
        second.close()
        first.close()
        with SqliteResultCache(cache_path) as observer:
            tiers = observer.tier_stats()
        assert tiers["results"].hits == 1
        assert tiers["results"].misses == 0  # put() was never a counted miss

    def test_gc_evicts_lru_first(self, rng, cache_path):
        result = run_training_job(_job(rng))
        with SqliteResultCache(cache_path) as cache:
            import time

            cache.put("old", result)
            time.sleep(0.02)  # distinct last_access timestamps
            cache.put("new", result)
            entry_bytes = cache.entry_stats()["results"]["size_bytes"] // 2
            report = cache.gc(max_mb=(entry_bytes + 8) / (1024 * 1024))
            assert report["removed_results"] == 1
            assert "old" not in cache._front
            assert cache.get("new") is not None
            assert cache.get("old", count_miss=False) is None
            assert cache.tier_stats()["results"].evictions == 1

    def test_clear_keeps_counters_clear_all_resets(self, rng, cache_path):
        job = _job(rng)
        with SqliteResultCache(cache_path) as cache:
            cache.put(job.fingerprint, run_training_job(job))
            cache.get(job.fingerprint)
            cache.clear()
            assert len(cache) == 0
            assert cache.stats.hits == 1  # mirror of InMemoryResultCache.clear
            removed = cache.clear_all()
            assert removed["removed_results"] == 0  # already cleared
            assert cache.stats == CacheStats()


class TestExecutorsShareTheFile:
    def test_serial_and_pool_results_byte_identical_and_warm(
        self, tiny_sliced, fast_training, fast_curves, cache_path
    ):
        """The acceptance property at engine level: cold serial, then a
        warm pool run through a fresh handle trains nothing and matches
        byte for byte."""
        cold_cache = SqliteResultCache(cache_path)
        cold = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=cold_cache),
        )
        cold_curves = cold.estimate(tiny_sliced)
        assert cold.trainings_performed > 0
        cold_cache.close()

        warm_cache = SqliteResultCache(cache_path)
        with ProcessPoolExecutor(max_workers=2, cache=warm_cache) as executor:
            warm = LearningCurveEstimator(
                trainer_config=fast_training,
                config=fast_curves,
                random_state=0,
                executor=executor,
            )
            warm_curves = warm.estimate(tiny_sliced)
        assert warm.trainings_performed == 0
        assert pickle.dumps(warm_curves) == pickle.dumps(cold_curves)
        warm_cache.close()

    def test_pool_workers_persist_fresh_results(
        self, tiny_sliced, fast_training, fast_curves, cache_path
    ):
        """A *cold* pool run must leave the disk tier as full as a serial
        one would: workers write their own results through the WAL file."""
        cache = SqliteResultCache(cache_path)
        with ProcessPoolExecutor(max_workers=2, cache=cache) as executor:
            estimator = LearningCurveEstimator(
                trainer_config=fast_training,
                config=fast_curves,
                random_state=0,
                executor=executor,
            )
            estimator.estimate(tiny_sliced)
            trained = estimator.trainings_performed
        assert trained > 0
        assert len(cache) == trained
        cache.close()


class TestCurvePersistence:
    def test_curves_survive_restart(
        self, tiny_sliced, fast_training, fast_curves, cache_path
    ):
        backend = SqliteResultCache(cache_path)
        first = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=backend),
            incremental=True,
            curve_store=backend,
        )
        curves = first.estimate(tiny_sliced)
        assert isinstance(first.curve_cache, SqliteCurveCache)
        backend.close()

        # A fresh process: same seed and protocol, empty memory, same file.
        reopened = SqliteResultCache(cache_path)
        second = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=reopened),
            incremental=True,
            curve_store=reopened,
        )
        assert second.curve_cache.stale_slices(tiny_sliced) == []
        hydrated = second.curve_cache.cached_curves(tiny_sliced.names)
        assert hydrated.keys() == curves.keys()
        # Per-curve comparison: the dict-level pickle is not canonical (the
        # fresh fits share array objects, the hydrated ones do not).
        for name in curves:
            assert pickle.dumps(hydrated[name]) == pickle.dumps(curves[name])
        reopened.close()

    def test_different_context_does_not_share_curves(
        self, tiny_sliced, fast_training, fast_curves, cache_path
    ):
        backend = SqliteResultCache(cache_path)
        first = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=backend),
            incremental=True,
            curve_store=backend,
        )
        first.estimate(tiny_sliced)
        other_seed = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=1,  # different root seed => different context
            executor=SerialExecutor(cache=backend),
            incremental=True,
            curve_store=backend,
        )
        assert other_seed.curve_cache.stale_slices(tiny_sliced) == list(
            tiny_sliced.names
        )
        backend.close()

    def test_corrupted_curve_degrades_to_miss(
        self, tiny_sliced, fast_training, fast_curves, cache_path
    ):
        backend = SqliteResultCache(cache_path)
        estimator = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=backend),
            incremental=True,
            curve_store=backend,
        )
        estimator.estimate(tiny_sliced)
        backend.close()
        with sqlite3.connect(cache_path) as conn:
            conn.execute("UPDATE curves SET payload = ?", (b"garbage",))
        reopened = SqliteResultCache(cache_path)
        fresh = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=reopened),
            incremental=True,
            curve_store=reopened,
        )
        # Every curve is a miss again — but estimation still succeeds, and
        # the result cache still serves the underlying trainings.
        assert fresh.curve_cache.stale_slices(tiny_sliced) == list(
            tiny_sliced.names
        )
        fresh.estimate(tiny_sliced)
        assert fresh.trainings_performed == 0
        reopened.close()

    @pytest.mark.parametrize("strategy", ["amortized", "exhaustive"])
    def test_multi_iteration_run_replays_across_restart(
        self, tiny_task, fast_training, cache_path, strategy
    ):
        """Regression: curves are keyed by the *full* dataset state.

        A slice's fitted curve depends on every pool (one amortized wave
        trains on fractions of all slices), so a mid-run refit must not
        overwrite the curve a restarted run needs for an earlier state —
        keying by the slice's own pool fingerprint did exactly that, and a
        warm multi-iteration tuner run diverged from the cold one at the
        first post-acquisition refit.
        """
        from dataclasses import replace

        from repro.acquisition.source import GeneratorDataSource
        from repro.core.tuner import SliceTuner, SliceTunerConfig

        def run():
            with SqliteResultCache(cache_path) as cache:
                tuner = SliceTuner(
                    tiny_task.initial_sliced_dataset(40, 60, random_state=0),
                    GeneratorDataSource(tiny_task, random_state=7),
                    trainer_config=fast_training,
                    curve_config=replace(CURVES, strategy=strategy),
                    config=SliceTunerConfig(incremental_curves=True),
                    random_state=0,
                    result_cache=cache,
                )
                result = tuner.run(budget=60, method="moderate", evaluate=False)
                return result.to_json(), tuner.estimator.trainings_performed

        CURVES = CurveEstimationConfig(n_points=3, n_repeats=1, min_fraction=0.3)
        cold_json, cold_trainings = run()
        warm_json, warm_trainings = run()
        assert cold_trainings > 0 and warm_trainings == 0
        assert warm_json == cold_json


_WRITER_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.engine.diskcache import SqliteResultCache
    from repro.engine.job import TrainingJob, run_training_job
    from repro.engine.factories import get_model_factory
    from repro.ml.data import Dataset
    from repro.ml.train import TrainingConfig

    path = sys.argv[1]
    cache = SqliteResultCache(path)
    rng = np.random.default_rng(0)
    for index in range(10_000):  # killed from outside long before the end
        dataset = Dataset(
            rng.normal(size=(12, 3)), rng.integers(0, 2, size=12)
        )
        job = TrainingJob(
            train=dataset, n_classes=2, seed=index,
            trainer_config=TrainingConfig(epochs=1),
            model_factory=get_model_factory("softmax"),
            factory_name="softmax",
        )
        result = run_training_job(job)
        result.fingerprint = job.fingerprint
        cache.put(job.fingerprint, result)
        print(index, flush=True)
    """
)

_HAMMER_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro.engine.diskcache import SqliteResultCache, run_training_job_shared
    from repro.engine.job import TrainingJob
    from repro.engine.factories import get_model_factory
    from repro.ml.data import Dataset
    from repro.ml.train import TrainingConfig

    path, start, stop, total = (
        sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
    )
    rng = np.random.default_rng(7)  # both processes build identical job specs
    jobs = []
    for index in range(total):
        dataset = Dataset(
            rng.normal(size=(12, 3)), rng.integers(0, 2, size=12)
        )
        jobs.append(TrainingJob(
            train=dataset, n_classes=2, seed=index,
            trainer_config=TrainingConfig(epochs=1),
            model_factory=get_model_factory("softmax"),
            factory_name="softmax",
        ))

    # Pass 1: hammer our share of the jobs into the common file.
    trained = 0
    for job in jobs[start:stop]:
        if not run_training_job_shared(path, job).from_cache:
            trained += 1

    # Barrier: wait until every job (ours and the peer's) is committed.
    cache = SqliteResultCache(path)
    deadline = time.time() + 60
    while len(cache) < total:
        if time.time() > deadline:
            print("TIMEOUT", flush=True)
            sys.exit(3)
        time.sleep(0.01)

    # Pass 2: the whole set again — every job must now be a cross-process
    # hit; a single retraining means the shared file lied.
    retrained = sum(
        0 if run_training_job_shared(path, job).from_cache else 1
        for job in jobs
    )
    print(f"trained={trained} retrained={retrained}", flush=True)
    sys.exit(0 if retrained == 0 else 4)
    """
)


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCrashAndConcurrency:
    def test_kill9_mid_put_leaves_readable_cache(self, rng, cache_path):
        """SIGKILL during the write loop: WAL guarantees every committed
        entry stays readable and the file passes an integrity check."""
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, cache_path],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        # Kill mid-stream, after at least a few committed puts.
        for _ in range(5):
            proc.stdout.readline()
        proc.kill()
        proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL

        with sqlite3.connect(cache_path) as conn:
            assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
        with SqliteResultCache(cache_path) as cache:
            assert len(cache) >= 5
            with sqlite3.connect(cache_path) as conn:
                fingerprints = [
                    row[0]
                    for row in conn.execute("SELECT fingerprint FROM results")
                ]
            for fingerprint in fingerprints:
                assert cache.get(fingerprint) is not None

    def test_two_processes_hammer_without_corruption_or_retraining(
        self, cache_path
    ):
        """Two concurrent writers on one WAL file: disjoint halves first,
        then each re-runs the full set and must get 20/20 cache hits."""
        total = 20
        env = _subprocess_env()
        procs = [
            subprocess.Popen(
                [
                    sys.executable, "-c", _HAMMER_SCRIPT, cache_path,
                    str(start), str(stop), str(total),
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for start, stop in ((0, total // 2), (total // 2, total))
        ]
        outputs = [proc.communicate(timeout=300) for proc in procs]
        for proc, (out, err) in zip(procs, outputs):
            assert proc.returncode == 0, (proc.returncode, out, err)
            assert "retrained=0" in out

        with sqlite3.connect(cache_path) as conn:
            assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
            count = conn.execute("SELECT count(*) FROM results").fetchone()[0]
        assert count == total  # keyed by content: no duplicate entries
        with SqliteResultCache(cache_path) as cache:
            with sqlite3.connect(cache_path) as conn:
                fingerprints = [
                    row[0]
                    for row in conn.execute("SELECT fingerprint FROM results")
                ]
            for fingerprint in fingerprints:
                assert cache.get(fingerprint) is not None
