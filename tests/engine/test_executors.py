"""Tests for repro.engine.executor: backends, ordering, cache integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import InMemoryResultCache
from repro.engine.executor import (
    ProcessPoolExecutor,
    SerialExecutor,
    available_executors,
    get_executor,
)
from repro.engine.factories import get_model_factory
from repro.engine.job import TrainingJob
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.utils.exceptions import ConfigurationError


def make_jobs(rng, count=3) -> list[TrainingJob]:
    jobs = []
    for index in range(count):
        dataset = Dataset(rng.normal(size=(25, 3)), rng.integers(0, 2, size=25))
        jobs.append(
            TrainingJob(
                train=dataset,
                n_classes=2,
                seed=100 + index,
                trainer_config=TrainingConfig(epochs=2, batch_size=8),
                model_factory=get_model_factory("softmax"),
                factory_name="softmax",
                tag=index,
            )
        )
    return jobs


class TestSerialExecutor:
    def test_results_in_submission_order(self, rng):
        results = SerialExecutor().submit(make_jobs(rng))
        assert [result.tag for result in results] == [0, 1, 2]

    def test_cache_serves_repeats(self, rng):
        cache = InMemoryResultCache()
        executor = SerialExecutor(cache=cache)
        jobs = make_jobs(rng)
        first = executor.submit(jobs)
        second = executor.submit(jobs)
        assert all(not result.from_cache for result in first)
        assert all(result.from_cache for result in second)
        for fresh, cached in zip(first, second):
            np.testing.assert_array_equal(fresh.model.weights, cached.model.weights)

    def test_cached_result_carries_submitting_jobs_tag(self, rng):
        executor = SerialExecutor(cache=InMemoryResultCache())
        jobs = make_jobs(rng, count=1)
        executor.submit(jobs)
        retagged = TrainingJob(
            train=jobs[0].train,
            n_classes=jobs[0].n_classes,
            seed=jobs[0].seed,
            trainer_config=jobs[0].trainer_config,
            model_factory=jobs[0].model_factory,
            factory_name=jobs[0].factory_name,
            tag="new-tag",
        )
        (result,) = executor.submit([retagged])
        assert result.from_cache and result.tag == "new-tag"

    def test_map_preserves_order(self):
        assert SerialExecutor().map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]


class TestProcessPoolExecutor:
    def test_matches_serial_results(self, rng):
        jobs = make_jobs(rng)
        serial = SerialExecutor().submit(jobs)
        with ProcessPoolExecutor(max_workers=1) as executor:
            parallel = executor.submit(jobs)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.model.weights, p.model.weights)
            assert s.training.train_losses == p.training.train_losses

    def test_unpicklable_factory_falls_back_to_serial(self, rng):
        dataset = Dataset(rng.normal(size=(20, 3)), rng.integers(0, 2, size=20))

        def closure_factory(n_classes):
            from repro.ml.linear import SoftmaxRegression

            return SoftmaxRegression(n_classes=n_classes, random_state=0)

        job = TrainingJob(
            train=dataset,
            n_classes=2,
            seed=1,
            trainer_config=TrainingConfig(epochs=2),
            model_factory=closure_factory,
            factory_name="closure",
        )
        with ProcessPoolExecutor(max_workers=1) as executor:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                (result,) = executor.submit([job])
        assert result.training.epochs_run == 2

    def test_map_matches_serial(self):
        with ProcessPoolExecutor(max_workers=1) as executor:
            assert executor.map(abs, [-3, 1, -2]) == [3, 1, 2]

    @pytest.mark.parametrize("kwargs", [{"max_workers": 0}, {"chunksize": 0}])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProcessPoolExecutor(**kwargs)


class TestGetExecutor:
    def test_builds_by_name(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        executor = get_executor("process", max_workers=1)
        assert isinstance(executor, ProcessPoolExecutor)
        executor.close()

    def test_aliases_and_unknown(self):
        executor = get_executor("process_pool", max_workers=1)
        assert isinstance(executor, ProcessPoolExecutor)
        executor.close()
        with pytest.raises(ConfigurationError):
            get_executor("quantum")

    def test_available_names(self):
        assert set(available_executors()) == {"serial", "process"}
