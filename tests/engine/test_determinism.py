"""Engine acceptance tests: backend-independence and honest cache accounting.

The contract of the execution engine (ISSUE 2):

* ``SerialExecutor`` and ``ProcessPoolExecutor`` produce byte-identical
  fitted curves and tuning results for the same seed,
* a warm ``ResultCache`` cuts a repeated ``estimate()`` to **zero** new
  trainings, and
* cache-served jobs never increment ``trainings_performed`` (the Table 8
  counter stays honest).
"""

from __future__ import annotations

import pytest

from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator
from repro.engine.cache import InMemoryResultCache
from repro.engine.executor import ProcessPoolExecutor, SerialExecutor


def make_tuner(tiny_task, fast_training, executor=None, cache=None, seed=3):
    sliced = tiny_task.initial_sliced_dataset(
        initial_sizes=30, validation_size=40, random_state=0
    )
    from repro.acquisition.source import GeneratorDataSource

    source = GeneratorDataSource(tiny_task, random_state=1)
    return SliceTuner(
        sliced,
        source,
        trainer_config=fast_training,
        curve_config=CurveEstimationConfig(n_points=3, n_repeats=1),
        config=SliceTunerConfig(lam=1.0, evaluation_trials=2),
        random_state=seed,
        executor=executor,
        result_cache=cache,
    )


def curves_equal(left, right) -> bool:
    return set(left) == set(right) and all(
        left[name].b == right[name].b and left[name].a == right[name].a
        for name in left
    )


class TestBackendEquivalence:
    def test_curves_identical_serial_vs_process(
        self, tiny_sliced, fast_training, fast_curves
    ):
        serial = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0,
            executor=SerialExecutor(),
        )
        with ProcessPoolExecutor(max_workers=1) as pool:
            parallel = LearningCurveEstimator(
                trainer_config=fast_training, config=fast_curves, random_state=0,
                executor=pool,
            )
            assert curves_equal(
                serial.estimate(tiny_sliced), parallel.estimate(tiny_sliced)
            )
        assert serial.trainings_performed == parallel.trainings_performed

    @pytest.mark.parametrize("method", ["moderate", "oneshot"])
    def test_tuning_results_identical_serial_vs_process(
        self, tiny_task, fast_training, method
    ):
        serial_tuner = make_tuner(tiny_task, fast_training, SerialExecutor())
        serial = serial_tuner.run(budget=150.0, method=method)
        with ProcessPoolExecutor(max_workers=1) as pool:
            parallel_tuner = make_tuner(tiny_task, fast_training, pool)
            parallel = parallel_tuner.run(budget=150.0, method=method)
        # Byte-identical runs: same JSON round-trip, same reports.
        assert serial.to_json() == parallel.to_json()
        assert serial.final_report.loss == parallel.final_report.loss
        assert serial.final_report.slice_losses == parallel.final_report.slice_losses

    def test_evaluate_identical_serial_vs_process(self, tiny_task, fast_training):
        serial = make_tuner(tiny_task, fast_training, SerialExecutor()).evaluate()
        with ProcessPoolExecutor(max_workers=1) as pool:
            parallel = make_tuner(tiny_task, fast_training, pool).evaluate()
        assert serial.loss == parallel.loss
        assert serial.slice_losses == parallel.slice_losses


class TestCacheAccounting:
    def test_warm_cache_estimate_trains_nothing(
        self, tiny_sliced, fast_training, fast_curves
    ):
        cache = InMemoryResultCache()
        estimator = LearningCurveEstimator(
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
            executor=SerialExecutor(cache=cache),
        )
        first = estimator.estimate(tiny_sliced)
        cold = estimator.trainings_performed
        assert cold > 0
        second = estimator.estimate(tiny_sliced)
        assert estimator.trainings_performed == cold, (
            "warm cache must add zero trainings"
        )
        assert cache.stats.hits == cold
        assert curves_equal(first, second)

    def test_cache_shared_across_estimators(self, tiny_sliced, fast_training, fast_curves):
        cache = InMemoryResultCache()
        first = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0,
            executor=SerialExecutor(cache=cache),
        )
        second = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0,
            executor=SerialExecutor(cache=cache),
        )
        first.estimate(tiny_sliced)
        second.estimate(tiny_sliced)
        # Same root seed + same data content => identical jobs => all hits.
        assert second.trainings_performed == 0

    def test_repeated_evaluate_served_from_cache(self, tiny_task, fast_training):
        cache = InMemoryResultCache()
        tuner = make_tuner(tiny_task, fast_training, cache=cache)
        first = tuner.evaluate()
        hits_before = cache.stats.hits
        second = tuner.evaluate()
        assert cache.stats.hits == hits_before + 2  # both trials served
        assert first.loss == second.loss

    def test_incremental_curves_only_refit_changed_slices(
        self, tiny_task, fast_training
    ):
        tuner = make_tuner(tiny_task, fast_training)
        estimator = LearningCurveEstimator(
            trainer_config=fast_training,
            config=CurveEstimationConfig(n_points=3, n_repeats=1, strategy="exhaustive"),
            random_state=0,
            incremental=True,
        )
        sliced = tuner.sliced
        estimator.estimate(sliced)
        cold = estimator.trainings_performed
        assert cold == 3 * len(sliced)
        # Nothing changed: fully served from the curve cache.
        estimator.estimate(sliced)
        assert estimator.trainings_performed == cold
        # One slice grows: only its 3 fractions are re-measured.
        target = sliced.names[0]
        sliced.add_examples(target, tuner.source.acquire(target, 5))
        estimator.estimate(sliced)
        assert estimator.trainings_performed == cold + 3

    def test_tuner_wires_incremental_flag_through(self, tiny_task, fast_training):
        sliced = tiny_task.initial_sliced_dataset(
            initial_sizes=30, validation_size=40, random_state=0
        )
        from repro.acquisition.source import GeneratorDataSource

        tuner = SliceTuner(
            sliced,
            GeneratorDataSource(tiny_task, random_state=1),
            trainer_config=fast_training,
            config=SliceTunerConfig(incremental_curves=True),
            random_state=0,
        )
        assert tuner.estimator.curve_cache is not None

    def test_incremental_amortized_refreshes_all_curves_on_change(
        self, tiny_task, fast_training
    ):
        # Amortized trainings cover every slice at once, so a pool change
        # refreshes every curve (no stale fits) at unchanged training cost —
        # and an unchanged dataset estimates with zero trainings.
        tuner = make_tuner(tiny_task, fast_training)
        estimator = LearningCurveEstimator(
            trainer_config=fast_training,
            config=CurveEstimationConfig(n_points=3, n_repeats=1, strategy="amortized"),
            random_state=0,
            incremental=True,
        )
        sliced = tuner.sliced
        first = estimator.estimate(sliced)
        cold = estimator.trainings_performed
        assert cold == 3
        estimator.estimate(sliced)  # unchanged: served from the curve cache
        assert estimator.trainings_performed == cold
        target = sliced.names[0]
        sliced.add_examples(target, tuner.source.acquire(target, 5))
        refreshed = estimator.estimate(sliced)
        assert estimator.trainings_performed == cold + 3
        # Every slice's curve was refit against the new models, including
        # the untouched ones.
        unchanged = sliced.names[1]
        assert (refreshed[unchanged].b, refreshed[unchanged].a) != (
            first[unchanged].b,
            first[unchanged].a,
        )

    def test_conflicting_result_caches_rejected(self, tiny_task, fast_training):
        from repro.utils.exceptions import ConfigurationError

        executor = SerialExecutor(cache=InMemoryResultCache())
        with pytest.raises(ConfigurationError):
            make_tuner(
                tiny_task, fast_training, executor=executor,
                cache=InMemoryResultCache(),
            )

    def test_same_cache_on_executor_and_tuner_accepted(
        self, tiny_task, fast_training
    ):
        cache = InMemoryResultCache()
        executor = SerialExecutor(cache=cache)
        tuner = make_tuner(tiny_task, fast_training, executor=executor, cache=cache)
        assert tuner.executor.cache is cache
