"""Slice discovery: registry behaviour, determinism, and dynamic re-slicing.

The load-bearing guarantees tested here:

* every built-in method is **seeded and deterministic** — two fits on the
  same data with the same config produce byte-identical slice specs and the
  same content fingerprint;
* the ``"auto"`` method is a faithful port of the legacy
  :class:`~repro.slices.auto_slicer.AutoSlicer` (same leaves, same names);
* ``transform`` produces a valid partition (no overlap, full coverage) and
  preserves every row;
* a dynamic (``reslice_every``) tuner run is byte-identical across the
  serial and process executors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.engine.executor import get_executor
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import prepare_named_instance
from repro.curves.estimator import default_model_factory
from repro.ml.train import Trainer
from repro.slices.auto_slicer import AutoSlicer
from repro.slices.discovery import (
    SliceDiscoveryMethod,
    available_discovery_methods,
    discovery_method_descriptions,
    get_discovery_method,
    is_discovery_method,
    register_discovery_method,
    unregister_discovery_method,
)
from repro.slices.validation import check_discovered_partition
from repro.ml.data import Dataset
from repro.utils.exceptions import ConfigurationError

BUILTINS = ("auto", "kmeans", "stump")


def _trained_model(sliced, fast_training):
    pool = sliced.combined_train()
    model = default_model_factory(sliced.n_classes)
    Trainer(config=fast_training, random_state=0).fit(model, pool)
    return model, pool


# -- registry ----------------------------------------------------------------------

def test_builtins_are_registered():
    assert available_discovery_methods() == BUILTINS
    for name in BUILTINS:
        assert is_discovery_method(name)
    descriptions = discovery_method_descriptions()
    assert all(descriptions[name] for name in BUILTINS)


def test_aliases_resolve_to_primary_name():
    method = get_discovery_method("error_kmeans")
    assert method.name == "kmeans"
    assert get_discovery_method("RULES").name == "stump"
    assert get_discovery_method("auto_slicer").name == "auto"


def test_unknown_method_raises():
    with pytest.raises(ConfigurationError, match="unknown discovery method"):
        get_discovery_method("nope")
    assert not is_discovery_method("nope")


def test_register_and_unregister_custom_method():
    @register_discovery_method("custom_one", aliases=("c1",))
    class CustomDiscovery(SliceDiscoveryMethod):
        """A do-nothing single-region method."""

        def fit(self, model, dataset, predictions=None):
            return self._mark_fitted()

        def _assign_regions(self, features):
            return np.zeros(len(features), dtype=np.int64)

        def _region_names(self):
            return ["everything"]

        def _boundary_payload(self):
            return None

    try:
        assert is_discovery_method("custom_one")
        assert is_discovery_method("c1")
        method = get_discovery_method("c1")
        assert isinstance(method, CustomDiscovery)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_discovery_method("custom_one")(CustomDiscovery)
    finally:
        unregister_discovery_method("custom_one")
    assert not is_discovery_method("custom_one")
    assert not is_discovery_method("c1")


def test_invalid_config_kwargs_raise():
    with pytest.raises(ConfigurationError, match="invalid"):
        get_discovery_method("kmeans", not_a_knob=3)
    with pytest.raises(ConfigurationError, match="n_slices"):
        get_discovery_method("kmeans", n_slices=0)


def test_unfitted_method_refuses_everything(tiny_sliced):
    method = get_discovery_method("kmeans")
    with pytest.raises(ConfigurationError, match="fit"):
        method.transform(tiny_sliced)
    with pytest.raises(ConfigurationError, match="fit"):
        method.specs()


# -- determinism -------------------------------------------------------------------

@pytest.mark.parametrize("name", BUILTINS)
def test_fit_is_deterministic_under_a_fixed_seed(name, tiny_sliced, fast_training):
    model, pool = _trained_model(tiny_sliced, fast_training)
    runs = []
    for _ in range(2):
        method = get_discovery_method(name, seed=7)
        method.fit(None if name == "auto" else model, pool)
        discovered = method.transform(tiny_sliced)
        runs.append(
            (
                method.fingerprint(),
                method.specs(),
                [len(discovered[n].train) for n in discovered.names],
                method.assign(pool.features).tolist(),
            )
        )
    assert runs[0] == runs[1]


def test_predictions_shortcut_matches_model(tiny_sliced, fast_training):
    model, pool = _trained_model(tiny_sliced, fast_training)
    predictions = model.predict(pool.features)
    via_model = get_discovery_method("kmeans", seed=3)
    via_model.fit(model, pool)
    via_model.transform(tiny_sliced)
    via_predictions = get_discovery_method("kmeans", seed=3)
    via_predictions.fit(None, pool, predictions=predictions)
    via_predictions.transform(tiny_sliced)
    assert via_model.fingerprint() == via_predictions.fingerprint()


@pytest.mark.parametrize("name", ("kmeans", "stump"))
def test_model_dependent_methods_need_model_or_predictions(
    name, tiny_sliced
):
    method = get_discovery_method(name)
    with pytest.raises(ConfigurationError, match="model|predictions"):
        method.fit(None, tiny_sliced.combined_train())


def test_auto_method_matches_legacy_auto_slicer(tiny_sliced):
    pool = tiny_sliced.combined_train()
    kwargs = dict(max_depth=3, min_slice_size=20, entropy_threshold=0.2)
    legacy = AutoSlicer(**kwargs).slice_as_mapping(pool)
    method = get_discovery_method("auto", **kwargs)
    discovered = method.fit(None, pool).transform(pool)
    assert list(discovered.names) == list(legacy)
    for name in legacy:
        assert len(discovered[name].train) == len(legacy[name])


# -- transform ---------------------------------------------------------------------

@pytest.mark.parametrize("name", BUILTINS)
def test_transform_is_a_partition_preserving_every_row(
    name, tiny_sliced, fast_training
):
    model, pool = _trained_model(tiny_sliced, fast_training)
    method = get_discovery_method(name, seed=1)
    method.fit(None if name == "auto" else model, pool)
    discovered = method.transform(tiny_sliced)
    assert sum(len(discovered[n].train) for n in discovered.names) == len(pool)
    validation = tiny_sliced.combined_validation()
    assert sum(
        len(discovered[n].validation) for n in discovered.names
    ) == len(validation)
    assert discovered.n_classes == tiny_sliced.n_classes
    assert all(discovered[n].cost > 0 for n in discovered.names)
    # assign() routes the training rows back to the slice that holds them.
    assignments = method.assign(pool.features)
    for index, slice_name in enumerate(method.slice_names):
        rows = pool.subset(np.nonzero(assignments == index)[0])
        assert len(rows) == len(discovered[slice_name].train)


def test_transform_empty_dataset_raises(tiny_sliced):
    pool = tiny_sliced.combined_train()
    method = get_discovery_method("auto")
    method.fit(None, pool)
    with pytest.raises(ConfigurationError, match="empty"):
        method.transform(Dataset.empty(pool.n_features))


# -- the partition check (slices/validation.py) ------------------------------------

def _dataset(n: int) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, 2)), rng.integers(0, 2, size=n))


def test_partition_check_accepts_a_clean_partition():
    data = _dataset(10)
    check_discovered_partition(
        data, {"a": np.arange(5), "b": np.arange(5, 10)}
    )


def test_partition_check_rejects_overlap():
    data = _dataset(10)
    with pytest.raises(ConfigurationError, match="overlap"):
        check_discovered_partition(
            data, {"a": np.arange(6), "b": np.arange(5, 10)}
        )


def test_partition_check_rejects_uncovered_rows():
    data = _dataset(10)
    with pytest.raises(ConfigurationError, match="uncovered|cover"):
        check_discovered_partition(
            data, {"a": np.arange(4), "b": np.arange(5, 10)}
        )


def test_partition_check_rejects_out_of_range_and_duplicates():
    data = _dataset(4)
    with pytest.raises(ConfigurationError, match="outside the dataset"):
        check_discovered_partition(data, {"a": np.array([0, 1, 2, 99])})
    with pytest.raises(ConfigurationError, match="twice"):
        check_discovered_partition(data, {"a": np.array([0, 1, 2, 3, 3])})


def test_partition_check_rejects_empty_mapping():
    with pytest.raises(ConfigurationError):
        check_discovered_partition(_dataset(3), {})


# -- dynamic re-slicing across executors -------------------------------------------

def _dynamic_run(executor):
    """One dynamic_slices-style run; returns (result json, reslice log)."""
    config = ExperimentConfig(
        dataset="adult_like",
        scenario="exponential",
        budget=500.0,
        methods=("conservative",),
        lam=1.0,
        trials=1,
        validation_size=60,
        curve_points=3,
        curve_repeats=1,
        epochs=8,
        seed=20_000,
        extra={"base_size": 60},
    )
    sliced, sources = prepare_named_instance(config, seed=config.seed)
    tuner = SliceTuner(
        sliced,
        trainer_config=config.training_config(),
        curve_config=config.curve_config(),
        config=SliceTunerConfig(
            discover="kmeans", reslice_every=2, max_iterations=6
        ),
        random_state=config.seed + 20_000,
        sources=sources,
        executor=executor,
    )
    session = tuner.session()
    reslices = []
    session.add_hook("reslice", reslices.append)
    for _ in session.stream(config.budget, strategy="conservative"):
        pass
    log = [
        (e.iteration, e.slice_generation, e.method, e.fingerprint, e.slice_names)
        for e in reslices
    ]
    return session.result().to_json(), log


def test_dynamic_run_is_identical_across_executors():
    with get_executor("serial") as serial_executor:
        serial_result, serial_log = _dynamic_run(serial_executor)
    with get_executor("process", max_workers=2) as process_executor:
        process_result, process_log = _dynamic_run(process_executor)
    assert serial_log, "the run never crossed a re-slice boundary"
    assert serial_log == process_log
    assert serial_result == process_result
