"""Test package."""
