"""Tests for repro.slices.sliced_dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.slices.slice import Slice, SliceSpec
from repro.slices.sliced_dataset import SlicedDataset
from repro.utils.exceptions import ConfigurationError, SlicingError


def make_data(n: int, label: int = 0, d: int = 3) -> Dataset:
    rng = np.random.default_rng(n + label)
    return Dataset(rng.normal(size=(n, d)), np.full(n, label))


def make_sliced(sizes=(10, 20, 30)) -> SlicedDataset:
    slices = [
        Slice(SliceSpec(f"s{i}", cost=1.0 + i), make_data(n, label=i), make_data(8, label=i))
        for i, n in enumerate(sizes)
    ]
    return SlicedDataset(slices, n_classes=len(sizes))


class TestConstruction:
    def test_names_sizes_costs(self):
        sliced = make_sliced()
        assert sliced.names == ["s0", "s1", "s2"]
        assert sliced.sizes().tolist() == [10, 20, 30]
        assert sliced.costs().tolist() == [1.0, 2.0, 3.0]
        assert len(sliced) == 3

    def test_duplicate_names_rejected(self):
        slices = [
            Slice(SliceSpec("dup"), make_data(5), make_data(5)),
            Slice(SliceSpec("dup"), make_data(5), make_data(5)),
        ]
        with pytest.raises(SlicingError):
            SlicedDataset(slices, n_classes=2)

    def test_empty_slice_list_rejected(self):
        with pytest.raises(SlicingError):
            SlicedDataset([], n_classes=2)

    def test_mismatched_feature_widths_rejected(self):
        slices = [
            Slice(SliceSpec("a"), make_data(5, d=3), make_data(5, d=3)),
            Slice(SliceSpec("b"), make_data(5, d=4), make_data(5, d=4)),
        ]
        with pytest.raises(SlicingError):
            SlicedDataset(slices, n_classes=2)

    def test_invalid_n_classes_rejected(self):
        slices = [Slice(SliceSpec("a"), make_data(5), make_data(5))]
        with pytest.raises(ConfigurationError):
            SlicedDataset(slices, n_classes=0)

    def test_from_datasets_constructor(self):
        sliced = SlicedDataset.from_datasets(
            {"a": make_data(5), "b": make_data(7, label=1)},
            {"a": make_data(3), "b": make_data(3, label=1)},
            n_classes=2,
            costs={"a": 2.0},
        )
        assert sliced["a"].cost == 2.0
        assert sliced["b"].cost == 1.0

    def test_from_datasets_mismatched_names_rejected(self):
        with pytest.raises(SlicingError):
            SlicedDataset.from_datasets(
                {"a": make_data(5)}, {"b": make_data(5)}, n_classes=2
            )


class TestAccessAndViews:
    def test_getitem_and_contains(self):
        sliced = make_sliced()
        assert "s1" in sliced
        assert sliced["s1"].size == 20
        with pytest.raises(SlicingError):
            sliced["missing"]

    def test_combined_train_size(self):
        sliced = make_sliced()
        assert len(sliced.combined_train()) == 60

    def test_combined_validation_size(self):
        sliced = make_sliced()
        assert len(sliced.combined_validation()) == 24

    def test_validation_by_slice_keys(self):
        assert set(make_sliced().validation_by_slice()) == {"s0", "s1", "s2"}

    def test_imbalance_ratio(self):
        assert make_sliced((10, 20, 30)).imbalance_ratio() == pytest.approx(3.0)

    def test_summary_entries(self):
        summary = make_sliced().summary()
        assert len(summary) == 3
        assert summary[0]["name"] == "s0"
        assert summary[2]["size"] == 30


class TestSubsetTrain:
    def test_fraction_subsets_every_slice(self):
        sliced = make_sliced((10, 20, 30))
        subset = sliced.subset_train(fraction=0.5, random_state=0)
        assert len(subset) == 5 + 10 + 15

    def test_explicit_sizes(self):
        sliced = make_sliced((10, 20, 30))
        subset = sliced.subset_train(sizes={"s0": 2, "s1": 3, "s2": 4}, random_state=0)
        assert len(subset) == 9

    def test_both_arguments_rejected(self):
        sliced = make_sliced()
        with pytest.raises(ConfigurationError):
            sliced.subset_train(fraction=0.5, sizes={"s0": 1})
        with pytest.raises(ConfigurationError):
            sliced.subset_train()


class TestMutation:
    def test_add_examples_updates_slice(self):
        sliced = make_sliced()
        sliced.add_examples("s0", make_data(5))
        assert sliced["s0"].size == 15
        assert sliced.acquired_counts().tolist() == [5, 0, 0]

    def test_copy_is_independent(self):
        sliced = make_sliced()
        copy = sliced.copy()
        copy.add_examples("s0", make_data(5))
        assert sliced["s0"].size == 10
        assert copy["s0"].size == 15
