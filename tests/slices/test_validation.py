"""Tests for repro.slices.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.slices.validation import check_partition, imbalance_ratio, size_entropy
from repro.utils.exceptions import SlicingError


def make_dataset(labels) -> Dataset:
    labels = np.asarray(labels)
    return Dataset(np.zeros((len(labels), 2)), labels)


class TestCheckPartition:
    def test_valid_partition_passes(self):
        dataset = make_dataset([0, 0, 1, 1, 2])
        slices = {
            "a": make_dataset([0, 0]),
            "b": make_dataset([1, 1]),
            "c": make_dataset([2]),
        }
        check_partition(dataset, slices)

    def test_size_mismatch_rejected(self):
        dataset = make_dataset([0, 1])
        with pytest.raises(SlicingError):
            check_partition(dataset, [make_dataset([0])])

    def test_class_count_mismatch_rejected(self):
        dataset = make_dataset([0, 1])
        with pytest.raises(SlicingError):
            check_partition(dataset, [make_dataset([0, 0])])

    def test_sequence_input_accepted(self):
        dataset = make_dataset([0, 1])
        check_partition(dataset, [make_dataset([0]), make_dataset([1])])


class TestImbalanceRatio:
    def test_paper_example(self):
        # Sizes 10, 20, 30 -> ratio 3 (the example in Section 5.2).
        assert imbalance_ratio([10, 20, 30]) == pytest.approx(3.0)

    def test_balanced_slices_give_one(self):
        assert imbalance_ratio([7, 7, 7]) == pytest.approx(1.0)

    def test_zero_size_gives_infinity(self):
        assert imbalance_ratio([0, 5]) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(SlicingError):
            imbalance_ratio([])

    def test_negative_rejected(self):
        with pytest.raises(SlicingError):
            imbalance_ratio([-1, 5])


class TestSizeEntropy:
    def test_balanced_has_max_entropy(self):
        assert size_entropy([10, 10, 10]) == pytest.approx(np.log(3))

    def test_single_slice_has_zero_entropy(self):
        assert size_entropy([10]) == pytest.approx(0.0)

    def test_skewed_less_than_balanced(self):
        assert size_entropy([1, 1, 98]) < size_entropy([33, 33, 34])

    def test_all_zero_sizes(self):
        assert size_entropy([0, 0]) == 0.0
