"""Tests for repro.slices.slice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.slices.slice import Slice, SliceSpec
from repro.utils.exceptions import ConfigurationError


def make_data(n: int, d: int = 3) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, d)), rng.integers(0, 2, size=n))


class TestSliceSpec:
    def test_defaults(self):
        spec = SliceSpec(name="europe")
        assert spec.cost == 1.0 and spec.description == ""

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SliceSpec(name="")

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            SliceSpec(name="x", cost=0.0)

    def test_with_cost_returns_new_spec(self):
        spec = SliceSpec(name="x", cost=1.0)
        updated = spec.with_cost(2.5)
        assert updated.cost == 2.5 and spec.cost == 1.0
        assert updated.name == "x"


class TestSlice:
    def test_basic_properties(self):
        slice_ = Slice(SliceSpec("a", cost=1.5), make_data(10), make_data(20))
        assert slice_.name == "a"
        assert slice_.cost == 1.5
        assert slice_.size == 10
        assert slice_.acquired == 0

    def test_add_examples_grows_train_and_acquired(self):
        slice_ = Slice(SliceSpec("a"), make_data(10), make_data(5))
        slice_.add_examples(make_data(4))
        assert slice_.size == 14
        assert slice_.acquired == 4

    def test_add_empty_examples_is_noop(self):
        slice_ = Slice(SliceSpec("a"), make_data(10), make_data(5))
        slice_.add_examples(Dataset.empty(3))
        assert slice_.size == 10 and slice_.acquired == 0

    def test_add_examples_wrong_width_raises(self):
        slice_ = Slice(SliceSpec("a"), make_data(10, 3), make_data(5, 3))
        with pytest.raises(ConfigurationError):
            slice_.add_examples(make_data(2, 4))

    def test_train_validation_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Slice(SliceSpec("a"), make_data(3, 2), make_data(3, 4))

    def test_copy_is_independent_for_growth(self):
        slice_ = Slice(SliceSpec("a"), make_data(10), make_data(5))
        copy = slice_.copy()
        copy.add_examples(make_data(3))
        assert slice_.size == 10 and copy.size == 13
