"""Tests for repro.slices.auto_slicer (Appendix A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.slices.auto_slicer import AutoSlicer, label_entropy
from repro.utils.exceptions import ConfigurationError


def biased_dataset(n_per_group: int = 80) -> Dataset:
    """Two clearly separated groups with different labels: splittable."""
    rng = np.random.default_rng(0)
    left = rng.normal(loc=(-3.0, 0.0), scale=0.4, size=(n_per_group, 2))
    right = rng.normal(loc=(3.0, 0.0), scale=0.4, size=(n_per_group, 2))
    features = np.vstack([left, right])
    labels = np.array([0] * n_per_group + [1] * n_per_group)
    return Dataset(features, labels)


def homogeneous_dataset(n: int = 100) -> Dataset:
    rng = np.random.default_rng(1)
    return Dataset(rng.normal(size=(n, 2)), np.zeros(n, dtype=int))


class TestLabelEntropy:
    def test_single_class_zero(self):
        assert label_entropy(homogeneous_dataset()) == pytest.approx(0.0)

    def test_balanced_two_classes(self):
        assert label_entropy(biased_dataset()) == pytest.approx(np.log(2))

    def test_empty_dataset(self):
        assert label_entropy(Dataset.empty(2)) == 0.0


class TestAutoSlicer:
    def test_splits_biased_dataset(self):
        slicer = AutoSlicer(max_depth=2, min_slice_size=20, entropy_threshold=0.2)
        leaves = slicer.slice(biased_dataset())
        assert len(leaves) >= 2
        # The split should isolate the label groups: leaves become pure.
        assert all(leaf.entropy < 0.2 for leaf in leaves)

    def test_leaves_form_partition(self):
        dataset = biased_dataset()
        leaves = AutoSlicer(max_depth=3, min_slice_size=10).slice(dataset)
        assert sum(len(leaf.dataset) for leaf in leaves) == len(dataset)

    def test_homogeneous_dataset_not_split(self):
        leaves = AutoSlicer(entropy_threshold=0.3).slice(homogeneous_dataset())
        assert len(leaves) == 1
        assert leaves[0].name == "root"

    def test_min_slice_size_prevents_tiny_leaves(self):
        leaves = AutoSlicer(max_depth=5, min_slice_size=30).slice(biased_dataset(40))
        assert all(len(leaf.dataset) >= 30 for leaf in leaves)

    def test_max_depth_limits_splitting(self):
        leaves = AutoSlicer(max_depth=1, min_slice_size=5, entropy_threshold=0.0).slice(
            biased_dataset()
        )
        assert all(leaf.depth <= 1 for leaf in leaves)

    def test_slice_as_mapping(self):
        mapping = AutoSlicer(max_depth=2, min_slice_size=20).slice_as_mapping(
            biased_dataset()
        )
        assert all(isinstance(name, str) for name in mapping)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoSlicer().slice(Dataset.empty(2))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoSlicer(max_depth=0)
        with pytest.raises(ConfigurationError):
            AutoSlicer(entropy_threshold=-1.0)
