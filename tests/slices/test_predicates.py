"""Tests for repro.slices.predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.slices.predicates import (
    FeaturePredicate,
    partition_by_label,
    partition_by_predicates,
)
from repro.utils.exceptions import SlicingError


@pytest.fixture
def demographic_dataset() -> Dataset:
    """Rows with columns (age, gender, region) and a binary label."""
    features = np.array(
        [
            [25.0, 0.0, 0.0],
            [35.0, 1.0, 0.0],
            [45.0, 0.0, 1.0],
            [55.0, 1.0, 1.0],
            [65.0, 0.0, 0.0],
            [30.0, 1.0, 1.0],
        ]
    )
    labels = np.array([0, 1, 0, 1, 1, 0])
    return Dataset(features, labels)


class TestFeaturePredicate:
    def test_equality_predicate(self, demographic_dataset):
        predicate = FeaturePredicate(equals={1: 0.0})
        assert len(predicate.matches(demographic_dataset)) == 3

    def test_conjunction(self, demographic_dataset):
        predicate = FeaturePredicate(equals={1: 1.0, 2: 1.0})
        assert len(predicate.matches(demographic_dataset)) == 2

    def test_range_predicate(self, demographic_dataset):
        predicate = FeaturePredicate(ranges={0: (30.0, 50.0)})
        assert len(predicate.matches(demographic_dataset)) == 3

    def test_label_predicate(self, demographic_dataset):
        predicate = FeaturePredicate(label=1)
        assert len(predicate.matches(demographic_dataset)) == 3

    def test_empty_predicate_matches_all(self, demographic_dataset):
        predicate = FeaturePredicate()
        assert len(predicate.matches(demographic_dataset)) == len(demographic_dataset)
        assert predicate.describe() == "TRUE"

    def test_describe_mentions_conditions(self):
        predicate = FeaturePredicate(equals={2: 1.0}, label=3)
        text = predicate.describe()
        assert "x2" in text and "label = 3" in text


class TestPartitionByPredicates:
    def test_valid_partition(self, demographic_dataset):
        parts = partition_by_predicates(
            demographic_dataset,
            {
                "male": FeaturePredicate(equals={1: 0.0}),
                "female": FeaturePredicate(equals={1: 1.0}),
            },
        )
        assert len(parts["male"]) + len(parts["female"]) == len(demographic_dataset)

    def test_uncovered_examples_rejected(self, demographic_dataset):
        with pytest.raises(SlicingError, match="uncovered"):
            partition_by_predicates(
                demographic_dataset,
                {"young": FeaturePredicate(ranges={0: (0.0, 40.0)})},
            )

    def test_overlapping_predicates_rejected(self, demographic_dataset):
        with pytest.raises(SlicingError):
            partition_by_predicates(
                demographic_dataset,
                {
                    "all": FeaturePredicate(),
                    "female": FeaturePredicate(equals={1: 1.0}),
                },
            )

    def test_overlap_allowed_when_not_required(self, demographic_dataset):
        parts = partition_by_predicates(
            demographic_dataset,
            {"all": FeaturePredicate(), "female": FeaturePredicate(equals={1: 1.0})},
            require_partition=False,
        )
        assert len(parts["all"]) == len(demographic_dataset)

    def test_sequence_input_autonames(self, demographic_dataset):
        parts = partition_by_predicates(
            demographic_dataset,
            [FeaturePredicate(equals={1: 0.0}), FeaturePredicate(equals={1: 1.0})],
        )
        assert set(parts) == {"slice_0", "slice_1"}

    def test_no_predicates_rejected(self, demographic_dataset):
        with pytest.raises(SlicingError):
            partition_by_predicates(demographic_dataset, {})


class TestPartitionByLabel:
    def test_one_slice_per_label(self, demographic_dataset):
        parts = partition_by_label(demographic_dataset)
        assert set(parts) == {"label_0", "label_1"}
        assert len(parts["label_0"]) == 3

    def test_explicit_class_count_creates_empty_slices(self, demographic_dataset):
        parts = partition_by_label(demographic_dataset, n_classes=3)
        assert len(parts["label_2"]) == 0
