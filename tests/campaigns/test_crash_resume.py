"""The acceptance test: kill -9 a campaign_suite run, resume, byte-identical.

A subprocess runs ``python -m repro.cli campaign start --suite`` against a
SQLite store and is killed with SIGKILL at a deterministic mid-run point
(after the Nth persisted iteration, via the ``REPRO_CAMPAIGN_KILL_AFTER``
testing hook — the kill races exactly like an external ``kill -9``, landing
after that iteration's event and snapshot committed but before anything
else).  The parent process then reopens the store, resumes every campaign,
and asserts each final :class:`~repro.core.plan.TuningResult` is
byte-identical to an uninterrupted in-process run of the same suite.
Everything is stdlib + the already-required NumPy: no new dependencies.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.campaigns import Campaign, InMemoryStore, SqliteStore
from repro.experiments.runner import campaign_suite

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_suite_subprocess(store_path: str, kill_after: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CAMPAIGN_KILL_AFTER"] = str(kill_after)
    env["REPRO_CAMPAIGN_KILL_SIGNAL"] = "KILL"
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "start",
            "--suite",
            "--store",
            store_path,
            "--quiet",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_kill9_mid_suite_then_resume_is_byte_identical(tmp_path):
    baseline = campaign_suite(store=InMemoryStore(), seed=0)
    assert len(baseline) >= 3

    store_path = str(tmp_path / "suite.sqlite")
    proc = _run_suite_subprocess(store_path, kill_after=3)
    # SIGKILL'd mid-run: non-zero exit, and the suite did not finish.
    assert proc.returncode == -signal.SIGKILL, (proc.returncode, proc.stderr)

    with SqliteStore(store_path) as store:
        records = store.list_campaigns()
        assert {record.name for record in records} == set(baseline)
        statuses = {record.name: record.status for record in records}
        assert any(status != "completed" for status in statuses.values()), statuses

        results = {}
        for record in records:
            campaign = Campaign.resume(store, record.campaign_id)
            results[record.name] = campaign.run()

    for name, expected in baseline.items():
        assert results[name].to_json() == expected.to_json(), name


def test_sigterm_single_campaign_then_resume_is_byte_identical(tmp_path):
    """The CI smoke shape, in miniature: SIGTERM one campaign mid-run."""
    from repro.campaigns import CampaignSpec

    spec_kwargs = dict(
        dataset="adult_like",
        method="moderate",
        budget=600.0,
        seed=0,
        base_size=50,
        validation_size=50,
        epochs=8,
        curve_points=3,
    )
    baseline = Campaign.start(
        InMemoryStore(), CampaignSpec(name="smoke", **spec_kwargs)
    ).run()

    store_path = str(tmp_path / "single.sqlite")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CAMPAIGN_KILL_AFTER"] = "2"
    env["REPRO_CAMPAIGN_KILL_SIGNAL"] = "TERM"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "campaign", "start",
            "--name", "smoke",
            "--dataset", "adult_like",
            "--method", "moderate",
            "--budget", "600",
            "--seed", "0",
            "--initial-size", "50",
            "--validation-size", "50",
            "--epochs", "8",
            "--curve-points", "3",
            "--store", store_path,
            "--quiet",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == -signal.SIGTERM, (proc.returncode, proc.stderr)

    with SqliteStore(store_path) as store:
        [record] = store.list_campaigns()
        assert record.status != "completed"
        resumed = Campaign.resume(store, record.campaign_id).run()
    assert resumed.to_json() == baseline.to_json()
