"""Dynamic re-slicing campaigns survive kill -9 at a re-slice boundary.

The acceptance test for durable re-slice events: a subprocess runs a
``dynamic`` campaign (``--discover kmeans --reslice-every 2``) against a
SQLite store and is SIGKILLed right after the iteration that precedes the
re-slice boundary, so the resumed run must re-discover the boundary itself.
The parent resumes the campaign and asserts the final result — including
the re-discovered slices — is byte-identical to an uninterrupted in-process
run, and that the replayed ``reslice`` events carry the same content
fingerprints.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.campaigns import Campaign, CampaignSpec, InMemoryStore, SqliteStore
from repro.campaigns.campaign import campaign_summary
from repro.campaigns.store import replay_events

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_SPEC_KWARGS = dict(
    name="dynamic",
    dataset="adult_like",
    scenario="exponential",
    method="conservative",
    budget=500.0,
    seed=20_000,
    base_size=60,
    validation_size=60,
    epochs=8,
    curve_points=3,
    discover="kmeans",
    reslice_every=2,
)

_CLI_FLAGS = [
    "--name", "dynamic",
    "--dataset", "adult_like",
    "--scenario", "exponential",
    "--method", "conservative",
    "--budget", "500",
    "--seed", "20000",
    "--initial-size", "60",
    "--validation-size", "60",
    "--epochs", "8",
    "--curve-points", "3",
    "--discover", "kmeans",
    "--reslice-every", "2",
]


def _reslice_log(store, campaign_id):
    events = store.events(campaign_id, kinds=("reslice",))
    return [
        (
            event.iteration,
            event.payload["slice_generation"],
            event.payload["method"],
            event.payload["fingerprint"],
            tuple(event.payload["slice_names"]),
        )
        for event in replay_events(events)
    ]


def test_kill9_at_reslice_boundary_resumes_byte_identical(tmp_path):
    baseline_store = InMemoryStore()
    baseline_campaign = Campaign.start(
        baseline_store, CampaignSpec(**_SPEC_KWARGS)
    )
    baseline = baseline_campaign.run()
    baseline_log = _reslice_log(baseline_store, baseline_campaign.campaign_id)
    assert baseline_log, "the baseline never crossed a re-slice boundary"
    assert baseline_campaign.slice_generation == baseline_log[-1][1]

    store_path = str(tmp_path / "dynamic.sqlite")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    # Kill right after iteration 2 persisted: the re-slice fires at the top
    # of the next step, so the resumed run must re-discover the boundary.
    env["REPRO_CAMPAIGN_KILL_AFTER"] = "2"
    env["REPRO_CAMPAIGN_KILL_SIGNAL"] = "KILL"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "campaign", "start",
            *_CLI_FLAGS, "--store", store_path, "--quiet",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == -signal.SIGKILL, (proc.returncode, proc.stderr)

    with SqliteStore(store_path) as store:
        [record] = store.list_campaigns()
        assert record.status != "completed"
        resumed = Campaign.resume(store, record.campaign_id).run()
        resumed_log = _reslice_log(store, record.campaign_id)
        summary = campaign_summary(store, record.campaign_id)

    assert resumed.to_json() == baseline.to_json()
    assert resumed_log == baseline_log
    assert summary["slice_generation"] == baseline_log[-1][1]


def test_reslice_events_replay_deduplicates_generations(tmp_path):
    """Killing *after* the boundary replays the same reslice under a newer
    store generation; replay_events must keep exactly one per iteration."""
    store_path = str(tmp_path / "late.sqlite")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CAMPAIGN_KILL_AFTER"] = "3"
    env["REPRO_CAMPAIGN_KILL_SIGNAL"] = "TERM"
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "campaign", "start",
            *_CLI_FLAGS, "--store", store_path, "--quiet",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == -signal.SIGTERM, (proc.returncode, proc.stderr)

    baseline_store = InMemoryStore()
    baseline_campaign = Campaign.start(
        baseline_store, CampaignSpec(**_SPEC_KWARGS)
    )
    baseline = baseline_campaign.run()
    baseline_log = _reslice_log(baseline_store, baseline_campaign.campaign_id)

    with SqliteStore(store_path) as store:
        [record] = store.list_campaigns()
        resumed = Campaign.resume(store, record.campaign_id).run()
        resumed_log = _reslice_log(store, record.campaign_id)
        iterations = [
            event.iteration
            for event in store.events(record.campaign_id, kinds=("reslice",))
        ]

    assert resumed.to_json() == baseline.to_json()
    # The collapsed log has one entry per boundary even if the raw store
    # accumulated the same boundary under several generations.
    assert resumed_log == baseline_log
    assert len(resumed_log) == len(set(iterations))
