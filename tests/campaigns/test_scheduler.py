"""Tests for repro.campaigns.scheduler (concurrent multiplexed campaigns)."""

from __future__ import annotations

import pytest

from repro.campaigns import (
    Campaign,
    CampaignScheduler,
    CampaignSpec,
    InMemoryStore,
)
from repro.engine.cache import InMemoryResultCache
from repro.engine.executor import SerialExecutor
from repro.experiments.runner import campaign_suite, default_campaign_specs
from repro.utils.exceptions import CampaignError

FAST = dict(
    dataset="adult_like",
    scenario="basic",
    seed=0,
    base_size=50,
    validation_size=50,
    epochs=8,
    curve_points=3,
)


def spec(name, **overrides) -> CampaignSpec:
    return CampaignSpec(name=name, **{**FAST, **overrides})


class TestSchedulingPolicy:
    def test_priority_lane_runs_first(self):
        scheduler = CampaignScheduler()
        ticks = []
        scheduler.add_progress_callback(ticks.append)
        scheduler.add(spec("low", method="uniform", budget=100.0, priority=0))
        scheduler.add(spec("high", method="moderate", budget=200.0, priority=1))
        scheduler.run()
        # Every "high" tick (including its completion) precedes every "low" one.
        names = [tick.name for tick in ticks]
        assert names.index("low") > max(
            i for i, name in enumerate(names) if name == "high"
        )

    def test_budget_fair_round_robin_within_a_lane(self):
        scheduler = CampaignScheduler()
        ticks = []
        scheduler.add_progress_callback(ticks.append)
        scheduler.add(spec("a", method="moderate", budget=600.0))
        scheduler.add(spec("b", method="conservative", budget=600.0, seed=1))
        scheduler.run()
        first_two = [tick.name for tick in ticks[:2]]
        # Neither campaign monopolizes the engine at the start: with equal
        # spent fractions the tie falls back to round-robin.
        assert first_two == ["a", "b"]
        # Both campaigns complete.
        assert {tick.name for tick in ticks if tick.done} == {"a", "b"}

    def test_duplicate_names_do_not_shadow_results(self):
        scheduler = CampaignScheduler()
        a = scheduler.add(spec("nightly", method="uniform", budget=80.0))
        b = scheduler.add(spec("nightly", method="uniform", budget=90.0))
        results = scheduler.run()
        # Same display name, different identity: both results survive
        # because the dict is keyed by the unique campaign id.
        assert set(results) == {a.campaign_id, b.campaign_id}
        assert results[a.campaign_id].budget == 80.0
        assert results[b.campaign_id].budget == 90.0

    def test_same_campaign_cannot_be_scheduled_twice(self):
        scheduler = CampaignScheduler()
        scheduler.add(spec("solo", budget=100.0, method="uniform"))
        with pytest.raises(CampaignError):
            scheduler.add(spec("solo-renamed", budget=100.0, method="uniform"))

    def test_completed_campaigns_contribute_without_slots(self):
        store = InMemoryStore()
        done = Campaign.start(store, spec("done", method="uniform", budget=80.0))
        expected = done.run()

        scheduler = CampaignScheduler(store=store)
        ticks = []
        scheduler.add_progress_callback(ticks.append)
        scheduler.add_existing(done.campaign_id)
        results = scheduler.run()
        assert results[done.campaign_id].to_json() == expected.to_json()
        assert ticks == []  # replayed, never scheduled


class TestDeterminism:
    def test_scheduler_matches_serial_execution(self):
        """Determinism regression: interleaving campaigns over one shared
        serial executor (the CI / 1-CPU case) must produce exactly the
        results of running each campaign on its own."""
        specs = [
            spec("a", method="moderate", budget=600.0, evaluate=True),
            spec("b", method="conservative", budget=400.0, seed=1),
            spec("c", method="uniform", budget=100.0, seed=2, priority=1),
        ]
        serial = {
            s.name: Campaign.start(InMemoryStore(), s).run() for s in specs
        }

        scheduler = CampaignScheduler(
            executor=SerialExecutor(cache=InMemoryResultCache())
        )
        campaigns = {s.name: scheduler.add(s) for s in specs}
        by_id = scheduler.run()
        multiplexed = {
            name: by_id[campaign.campaign_id]
            for name, campaign in campaigns.items()
        }

        assert set(multiplexed) == set(serial)
        for name in serial:
            assert multiplexed[name].to_json() == serial[name].to_json()


class TestCampaignSuite:
    def test_suite_runs_heterogeneous_campaigns(self):
        progress = []
        results = campaign_suite(on_progress=progress.append, seed=0)
        assert set(results) == {
            s.name for s in default_campaign_specs(0)
        }
        for result in results.values():
            assert result.n_iterations >= 1
            assert result.spent > 0
        # Progress events cover every campaign.
        assert {tick.name for tick in progress} == set(results)

    def test_suite_is_reentrant_on_the_same_store(self):
        store = InMemoryStore()
        first = campaign_suite(store=store, seed=0)
        second = campaign_suite(store=store, seed=0)
        for name in first:
            assert second[name].to_json() == first[name].to_json()
        # Idempotent: the second pass deduplicated, not duplicated.
        assert len(store.list_campaigns()) == len(first)
