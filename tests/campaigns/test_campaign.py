"""Tests for repro.campaigns.campaign (durable, resumable runs)."""

from __future__ import annotations

import pytest

from repro.campaigns import (
    COMPLETED,
    PAUSED,
    Campaign,
    CampaignSpec,
    InMemoryStore,
    SqliteStore,
    campaign_progress,
)
from repro.utils.exceptions import CampaignError, ConfigurationError

#: Small, fast campaign shared by most tests (~4 iterations on adult_like).
FAST = dict(
    dataset="adult_like",
    scenario="basic",
    method="moderate",
    budget=600.0,
    seed=0,
    base_size=50,
    validation_size=50,
    epochs=8,
    curve_points=3,
)


def fast_spec(name="fast", **overrides) -> CampaignSpec:
    return CampaignSpec(name=name, **{**FAST, **overrides})


def baseline_result(spec: CampaignSpec):
    """The uninterrupted result of ``spec`` on a throwaway store."""
    return Campaign.start(InMemoryStore(), spec).run()


class TestCampaignSpec:
    def test_fingerprint_ignores_non_identity_fields(self):
        a = fast_spec(name="one", priority=0, checkpoint_every=1)
        b = fast_spec(name="two", priority=5, checkpoint_every=3)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_identity_fields(self):
        base = fast_spec()
        assert base.fingerprint() != fast_spec(budget=601.0).fingerprint()
        assert base.fingerprint() != fast_spec(method="uniform").fingerprint()
        assert base.fingerprint() != fast_spec(seed=1).fingerprint()

    def test_dict_round_trip(self):
        spec = fast_spec(source="mixed", evaluate=True, priority=2)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_campaign_id_is_deterministic_and_readable(self):
        spec = fast_spec(name="My Fancy Run!")
        assert spec.campaign_id() == spec.campaign_id()
        assert spec.campaign_id().startswith("my-fancy-run-")

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            fast_spec(method="alchemy")

    def test_invalid_checkpoint_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            fast_spec(checkpoint_every=0)


class TestRunAndPersist:
    def test_run_produces_same_result_as_plain_tuner_session(self):
        # The campaign wrapper must not perturb the underlying run.
        from repro.campaigns.campaign import build_campaign_tuner

        spec = fast_spec()
        campaign_result = baseline_result(spec)

        tuner = build_campaign_tuner(spec)
        session = tuner.session()
        for _ in session.stream(spec.budget, strategy=spec.method, lam=spec.lam):
            pass
        assert campaign_result.to_json() == session.result().to_json()

    def test_events_cover_every_iteration_and_fulfillment(self):
        store = InMemoryStore()
        spec = fast_spec()
        campaign = Campaign.start(store, spec)
        result = campaign.run()
        events = store.events(campaign.campaign_id)
        iteration_events = [e for e in events if e.kind == "iteration"]
        assert len(iteration_events) == result.n_iterations
        fulfillment_events = [e for e in events if e.kind == "fulfillment"]
        assert len(fulfillment_events) == sum(
            len(record.fulfillments) for record in result.iterations
        )
        assert [e.kind for e in events[-1:]] == ["completed"]
        assert store.get_campaign(campaign.campaign_id).status == COMPLETED

    def test_progress_replays_the_log(self):
        store = InMemoryStore()
        campaign = Campaign.start(store, fast_spec())
        result = campaign.run()
        progress = campaign_progress(store, campaign.campaign_id)
        assert progress.iterations == result.n_iterations
        assert progress.spent == pytest.approx(result.spent)
        assert progress.acquired == result.total_acquired
        assert progress.status == COMPLETED

    def test_result_before_completion_rejected(self):
        campaign = Campaign.start(InMemoryStore(), fast_spec())
        with pytest.raises(CampaignError):
            campaign.result()


class TestPauseAndResume:
    def test_max_steps_pauses_with_checkpoint(self):
        store = InMemoryStore()
        campaign = Campaign.start(store, fast_spec())
        assert campaign.run(max_steps=1) is None
        assert store.get_campaign(campaign.campaign_id).status == PAUSED
        assert store.latest_snapshot(campaign.campaign_id) is not None

    def test_pause_hook_stops_the_loop(self):
        store = InMemoryStore()
        campaign = Campaign.start(store, fast_spec())
        campaign.add_iteration_hook(lambda c, record: c.pause())
        assert campaign.run() is None
        assert store.get_campaign(campaign.campaign_id).status == PAUSED

    @pytest.mark.parametrize("interrupt_after", [1, 2, 3])
    def test_resume_matches_uninterrupted_at_every_interrupt_point(
        self, interrupt_after
    ):
        spec = fast_spec(evaluate=True)
        expected = baseline_result(spec)
        assert expected.n_iterations >= 3  # the interrupt points are mid-run

        store = InMemoryStore()
        first = Campaign.start(store, spec)
        assert first.run(max_steps=interrupt_after) is None

        resumed = Campaign.resume(store, first.campaign_id)
        result = resumed.run()
        assert result.to_json() == expected.to_json()

    def test_crash_between_snapshots_reexecutes_the_tail(self, tmp_path):
        # checkpoint_every=2 → the crash point (after 3 advances) has events
        # for iterations 1-3 but a snapshot only at iteration 2; resume must
        # re-execute iteration 3 deterministically from that snapshot.
        spec = fast_spec(checkpoint_every=2)
        expected = baseline_result(spec)

        path = str(tmp_path / "crash.sqlite")
        store = SqliteStore(path)
        campaign = Campaign.start(store, spec)
        for _ in range(3):
            campaign.advance()
        snapshot = store.latest_snapshot(campaign.campaign_id)
        assert snapshot.iteration == 2
        # Abrupt death: no pause(), no final checkpoint, just gone.
        store.close()
        del campaign

        reopened = SqliteStore(path)
        resumed = Campaign.resume(reopened, spec.campaign_id())
        result = resumed.run()
        assert result.to_json() == expected.to_json()
        # The re-executed iteration 3 was appended under a newer generation,
        # and replay collapses the log back to one consistent history.
        progress = campaign_progress(reopened, spec.campaign_id())
        assert progress.iterations == expected.n_iterations
        assert progress.spent == pytest.approx(expected.spent)
        assert progress.generations == 2
        reopened.close()

    def test_resume_restores_provider_state(self):
        # A draining pool with generator failover: resume must restore the
        # pool's remaining reserves and both providers' RNG streams, or the
        # delivered examples (and provenance) would diverge.
        spec = fast_spec(
            name="mixed", scenario="mixed_sources", method="conservative", budget=400.0
        )
        expected = baseline_result(spec)

        store = InMemoryStore()
        first = Campaign.start(store, spec)
        assert first.run(max_steps=1) is None
        result = Campaign.resume(store, first.campaign_id).run()
        assert result.to_json() == expected.to_json()

    def test_resume_unknown_campaign_rejected(self):
        with pytest.raises(CampaignError):
            Campaign.resume(InMemoryStore(), "ghost")


class TestIdempotentReruns:
    def test_completed_campaign_replays_without_rebuilding(self):
        store = InMemoryStore()
        spec = fast_spec()
        original = Campaign.start(store, spec).run()

        rerun = Campaign.start(store, spec)
        assert rerun.reused
        assert rerun.is_done
        assert rerun.run().to_json() == original.to_json()
        # No tuner was built, no training was performed.
        assert rerun.tuner is None

    def test_same_identity_different_name_deduplicates(self):
        store = InMemoryStore()
        Campaign.start(store, fast_spec(name="first")).run()
        rerun = Campaign.start(store, fast_spec(name="renamed", priority=3))
        assert rerun.reused
        assert len(store.list_campaigns()) == 1

    def test_unfinished_campaign_is_continued_not_duplicated(self):
        store = InMemoryStore()
        spec = fast_spec()
        first = Campaign.start(store, spec)
        assert first.run(max_steps=1) is None

        second = Campaign.start(store, spec)
        assert second.reused
        result = second.run()
        assert result.to_json() == baseline_result(spec).to_json()
        assert len(store.list_campaigns()) == 1
