"""Tests for repro.campaigns.store (event log + snapshot backends)."""

from __future__ import annotations

import pytest

from repro.campaigns.store import (
    COMPLETED,
    PENDING,
    CampaignEvent,
    CampaignRecord,
    CampaignStore,
    InMemoryStore,
    SqliteStore,
    replay_events,
)
from repro.utils.exceptions import CampaignError


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    """Each test runs against both backends."""
    if request.param == "memory":
        backend = InMemoryStore()
    else:
        backend = SqliteStore(str(tmp_path / "store.sqlite"))
    yield backend
    backend.close()


def make_record(campaign_id="camp-1", **overrides) -> CampaignRecord:
    defaults = dict(
        campaign_id=campaign_id,
        name="camp",
        fingerprint=f"fp-{campaign_id}",
        spec={"name": "camp", "budget": 10.0},
        status=PENDING,
        priority=1,
    )
    defaults.update(overrides)
    return CampaignRecord(**defaults)


class TestCampaignRecords:
    def test_create_and_get_round_trip(self, store):
        store.create_campaign(make_record())
        record = store.get_campaign("camp-1")
        assert record.name == "camp"
        assert record.spec == {"name": "camp", "budget": 10.0}
        assert record.status == PENDING
        assert record.priority == 1

    def test_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, CampaignStore)

    def test_duplicate_id_rejected(self, store):
        store.create_campaign(make_record())
        with pytest.raises(CampaignError):
            store.create_campaign(make_record())

    def test_unknown_campaign_rejected(self, store):
        with pytest.raises(CampaignError):
            store.get_campaign("nope")
        with pytest.raises(CampaignError):
            store.set_status("nope", COMPLETED)
        with pytest.raises(CampaignError):
            store.events("nope")

    def test_find_fingerprint(self, store):
        store.create_campaign(make_record("a"))
        store.create_campaign(make_record("b"))
        assert store.find_fingerprint("fp-b").campaign_id == "b"
        assert store.find_fingerprint("fp-zzz") is None

    def test_status_update(self, store):
        store.create_campaign(make_record())
        store.set_status("camp-1", COMPLETED)
        assert store.get_campaign("camp-1").status == COMPLETED

    def test_list_preserves_creation_order(self, store):
        for campaign_id in ("a", "b", "c"):
            store.create_campaign(make_record(campaign_id))
        assert [r.campaign_id for r in store.list_campaigns()] == ["a", "b", "c"]


class TestEventLog:
    def test_append_only_with_monotonic_seq(self, store):
        store.create_campaign(make_record())
        seqs = [
            store.append_event(
                "camp-1", generation=0, iteration=i, kind="iteration", payload={"i": i}
            )
            for i in range(1, 4)
        ]
        assert seqs == sorted(seqs)
        events = store.events("camp-1")
        assert [e.iteration for e in events] == [1, 2, 3]
        assert [e.payload["i"] for e in events] == [1, 2, 3]

    def test_payload_dict_order_survives_round_trip(self, store):
        store.create_campaign(make_record())
        payload = {"zeta": 1, "alpha": 2, "mid": {"b": 1, "a": 2}}
        store.append_event(
            "camp-1", generation=0, iteration=1, kind="iteration", payload=payload
        )
        stored = store.events("camp-1")[0].payload
        assert list(stored) == ["zeta", "alpha", "mid"]
        assert list(stored["mid"]) == ["b", "a"]

    def test_latest_generation_tracks_events_and_snapshots(self, store):
        store.create_campaign(make_record())
        assert store.latest_generation("camp-1") == -1
        store.append_event(
            "camp-1", generation=0, iteration=1, kind="iteration", payload={}
        )
        assert store.latest_generation("camp-1") == 0
        store.save_snapshot("camp-1", generation=2, iteration=1, payload=b"x")
        assert store.latest_generation("camp-1") == 2


class TestSnapshots:
    def test_latest_snapshot_wins(self, store):
        store.create_campaign(make_record())
        assert store.latest_snapshot("camp-1") is None
        store.save_snapshot("camp-1", generation=0, iteration=1, payload=b"one")
        store.save_snapshot("camp-1", generation=0, iteration=2, payload=b"two")
        snapshot = store.latest_snapshot("camp-1")
        assert snapshot.iteration == 2
        assert snapshot.payload == b"two"


class TestSqliteDurability:
    def test_reopen_sees_committed_state(self, tmp_path):
        path = str(tmp_path / "durable.sqlite")
        first = SqliteStore(path)
        first.create_campaign(make_record())
        first.append_event(
            "camp-1", generation=0, iteration=1, kind="iteration", payload={"spent": 3}
        )
        first.save_snapshot("camp-1", generation=0, iteration=1, payload=b"blob")
        # Simulate an abrupt death: no explicit commit/close choreography is
        # needed — every append is its own committed transaction.
        first.close()

        second = SqliteStore(path)
        assert second.get_campaign("camp-1").name == "camp"
        assert second.events("camp-1")[0].payload == {"spent": 3}
        assert second.latest_snapshot("camp-1").payload == b"blob"
        second.close()


class TestReplay:
    def test_replay_keeps_newest_generation_per_iteration(self):
        def event(seq, generation, iteration, kind="iteration", payload=None):
            return CampaignEvent(
                campaign_id="c",
                seq=seq,
                generation=generation,
                iteration=iteration,
                kind=kind,
                payload=payload or {"gen": generation},
            )

        log = [
            event(1, 0, 1),
            event(2, 0, 1, kind="fulfillment"),
            event(3, 0, 2),
            event(4, 0, 3),  # superseded: gen 1 re-executed iteration 3
            event(5, 1, 3),
            event(6, 1, 4),
            event(7, 1, -1, kind="completed"),
        ]
        replayed = replay_events(log)
        iterations = [e for e in replayed if e.kind == "iteration"]
        assert [(e.iteration, e.generation) for e in iterations] == [
            (1, 0),
            (2, 0),
            (3, 1),
            (4, 1),
        ]
        # Out-of-loop kinds are deduplicated independently of iterations.
        assert sum(1 for e in replayed if e.kind == "completed") == 1
        assert sum(1 for e in replayed if e.kind == "fulfillment") == 1
        # Chronological order is preserved.
        assert [e.seq for e in replayed] == sorted(e.seq for e in replayed)


class TestQueryPlans:
    """The hot event-log queries must stay on their covering indexes.

    ``events(after=)`` is the live-tail cursor query (polled by the serve
    layer and the analytics refresh), ``events(kinds=)`` backs progress
    summaries; neither may degrade to a full table scan as the log grows.
    """

    @pytest.fixture
    def sqlite_store(self, tmp_path):
        backend = SqliteStore(str(tmp_path / "plans.sqlite"))
        backend.create_campaign(make_record())
        for i in range(5):
            backend.append_event(
                "camp-1", generation=0, iteration=i, kind="iteration",
                payload={"iteration": i},
            )
        yield backend
        backend.close()

    @staticmethod
    def plan(store, query, params):
        rows = store._conn.execute(
            "EXPLAIN QUERY PLAN " + query, params
        ).fetchall()
        return " | ".join(str(row[-1]) for row in rows)

    SELECT = (
        "SELECT seq, generation, iteration, kind, payload FROM events "
        "WHERE campaign_id = ?"
    )

    def test_cursor_query_uses_the_campaign_seq_index(self, sqlite_store):
        plan = self.plan(
            sqlite_store,
            self.SELECT + " AND seq > ? ORDER BY seq",
            ("camp-1", 3),
        )
        assert "idx_events_campaign" in plan
        assert "seq>?" in plan
        assert "SCAN events" not in plan

    def test_kind_query_uses_the_campaign_kind_index(self, sqlite_store):
        plan = self.plan(
            sqlite_store,
            self.SELECT + " AND kind IN (?) ORDER BY seq",
            ("camp-1", "fulfillment"),
        )
        assert "idx_events_campaign_kind" in plan
        assert "SCAN events" not in plan

    def test_kind_plus_cursor_query_is_fully_indexed(self, sqlite_store):
        plan = self.plan(
            sqlite_store,
            self.SELECT + " AND seq > ? AND kind IN (?) ORDER BY seq",
            ("camp-1", 2, "iteration"),
        )
        assert "idx_events_campaign_kind" in plan
        assert "kind=? AND seq>?" in plan
        assert "SCAN events" not in plan

    def test_filtered_reads_return_the_same_events_as_python_filtering(
        self, sqlite_store
    ):
        everything = sqlite_store.events("camp-1")
        assert sqlite_store.events("camp-1", after=2) == [
            e for e in everything if e.seq > 2
        ]
        assert sqlite_store.events("camp-1", kinds=("iteration",)) == everything
