"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, run_curves, run_plan

#: Small, fast arguments shared by the CLI tests (adult_like is the cheapest
#: dataset: 4 slices, binary labels).
FAST = [
    "--dataset", "adult_like",
    "--initial-size", "60",
    "--validation-size", "60",
    "--epochs", "10",
    "--curve-points", "3",
    "--seed", "0",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curves", "--dataset", "imagenet"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--methods", "alchemy"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "fashion_like"
        assert "moderate" in args.methods

    def test_any_registered_strategy_accepted(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "bandit", "Water_Filling", "moderate"]
        )
        assert args.methods == ["bandit", "water_filling", "moderate"]


class TestSubcommands:
    def test_curves_lists_every_slice(self, capsys):
        exit_code = main(["curves", *FAST])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("White_Male", "White_Female", "Black_Male", "Black_Female"):
            assert name in output
        assert "reliability" in output

    def test_plan_prints_allocation(self, capsys):
        exit_code = main(["plan", *FAST, "--budget", "80", "--lam", "1.0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "examples to acquire" in output
        assert "cost" in output

    def test_compare_prints_methods_table(self, capsys):
        exit_code = main(
            [
                "compare",
                *FAST,
                "--budget", "60",
                "--methods", "uniform", "oneshot",
                "--trials", "1",
                "--show-allocations",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "original" in output
        assert "uniform" in output and "oneshot" in output
        assert "Avg./Max. EER" in output
        assert "Mean examples acquired per slice" in output

    def test_run_helpers_return_text(self):
        args = build_parser().parse_args(["curves", *FAST])
        assert "Learning curves" in run_curves(args)
        args = build_parser().parse_args(["plan", *FAST, "--budget", "40"])
        assert "total" in run_plan(args)

    def test_strategies_lists_registry(self, capsys):
        exit_code = main(["strategies"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in (
            "oneshot",
            "conservative",
            "moderate",
            "aggressive",
            "uniform",
            "water_filling",
            "proportional",
            "bandit",
        ):
            assert name in output
        assert "iterative" in output

    def test_sources_lists_provider_registry(self, capsys):
        exit_code = main(["sources"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("generator", "pool", "crowdsourcing", "composite", "throttled"):
            assert name in output

    def test_run_prints_fulfillment_log(self, capsys):
        exit_code = main(
            [
                "run",
                *FAST,
                "--budget", "60",
                "--method", "uniform",
                "--source", "mixed",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fulfillment log" in output
        assert "provenance" in output
        assert "pool" in output and "generator" in output

    def test_run_flaky_scenario_with_rounds(self, capsys):
        exit_code = main(
            [
                "run",
                *FAST,
                "--scenario", "flaky_source",
                "--budget", "60",
                "--method", "uniform",
                "--rounds", "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throttled_generator" in output

    def test_run_rejects_unknown_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--source", "teleporter"])

    def test_run_prints_cache_stats(self, capsys):
        exit_code = main(
            ["run", *FAST, "--budget", "60", "--method", "uniform"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Engine cache effectiveness" in output
        assert "trainings performed" in output


class TestQuietAndExitCodes:
    def test_quiet_run_prints_only_the_summary_line(self, capsys):
        exit_code = main(
            ["run", *FAST, "--quiet", "--budget", "60", "--method", "uniform"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out.strip()
        assert len(output.splitlines()) == 1
        assert "method=uniform" in output and "spent=" in output

    def test_quiet_strategies_prints_bare_names(self, capsys):
        assert main(["strategies", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "moderate" in output
        assert "description" not in output

    def test_config_errors_exit_2(self, capsys):
        # --workers without the process executor is a configuration error.
        exit_code = main(
            ["compare", *FAST, "--budget", "40", "--trials", "1", "--workers", "2"]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_campaign_exits_2(self, capsys, tmp_path):
        store = str(tmp_path / "empty.sqlite")
        assert main(["campaign", "show", "ghost", "--store", store]) == 2
        assert main(["campaign", "resume", "ghost", "--store", store]) == 2
        assert main(["run", *FAST, "--resume", "ghost", "--store", store]) == 2
        err = capsys.readouterr().err
        assert err.count("error:") == 3

    def test_campaign_start_without_name_exits_2(self, capsys, tmp_path):
        store = str(tmp_path / "empty.sqlite")
        assert main(["campaign", "start", "--store", store]) == 2
        assert "error:" in capsys.readouterr().err


#: Small, fast campaign flags shared by the campaign CLI tests.
CAMPAIGN_FAST = [
    "--dataset", "adult_like",
    "--method", "moderate",
    "--budget", "200",
    "--seed", "0",
    "--initial-size", "50",
    "--validation-size", "50",
    "--epochs", "8",
    "--curve-points", "3",
]


class TestCampaignCommands:
    def test_start_list_show_flow(self, capsys, tmp_path):
        store = str(tmp_path / "camp.sqlite")
        exit_code = main(
            ["campaign", "start", "--name", "demo", *CAMPAIGN_FAST, "--store", store]
        )
        assert exit_code == 0
        start_output = capsys.readouterr().out
        assert "completed" in start_output
        assert "Engine cache effectiveness" in start_output

        assert main(["campaign", "list", "--store", store]) == 0
        list_output = capsys.readouterr().out
        assert "demo" in list_output and "completed" in list_output

        campaign_id = next(
            line.split()[0]
            for line in list_output.splitlines()
            if line.startswith("demo-")
        )
        assert main(["campaign", "show", campaign_id, "--store", store]) == 0
        show_output = capsys.readouterr().out
        assert "Replayed history" in show_output
        assert "method = moderate" in show_output

    def test_start_pause_then_run_resume_shorthand(self, capsys, tmp_path):
        store = str(tmp_path / "camp.sqlite")
        exit_code = main(
            [
                "campaign", "start", "--name", "pausy", *CAMPAIGN_FAST,
                "--max-steps", "1", "--store", store,
            ]
        )
        assert exit_code == 0
        paused_output = capsys.readouterr().out
        assert "paused" in paused_output
        campaign_id = paused_output.split(":", 1)[0].strip().splitlines()[-1]

        # `run --resume` is a shorthand for `campaign resume`.
        assert main(["run", "--resume", campaign_id, "--store", store]) == 0
        resumed_output = capsys.readouterr().out
        assert "pausy" in resumed_output and "iterations=" in resumed_output

        assert main(["campaign", "list", "--store", store, "--quiet"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_idempotent_restart_replays_without_rerunning(self, capsys, tmp_path):
        store = str(tmp_path / "camp.sqlite")
        args = ["campaign", "start", "--name", "once", *CAMPAIGN_FAST, "--store", store]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "idempotent re-run" in capsys.readouterr().out

    def test_resume_all_with_nothing_pending(self, capsys, tmp_path):
        store = str(tmp_path / "camp.sqlite")
        assert main(
            ["campaign", "start", "--name", "done", *CAMPAIGN_FAST, "--store", store]
        ) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", "--all", "--store", store]) == 0
        assert "nothing to resume" in capsys.readouterr().out

    def test_resume_rejects_id_plus_all(self, capsys, tmp_path):
        store = str(tmp_path / "camp.sqlite")
        assert (
            main(["campaign", "resume", "some-id", "--all", "--store", store]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestJsonOutput:
    """The --json machine-readable mode: stable schema tags, parseable out."""

    def test_run_json_schema(self, capsys):
        import json

        exit_code = main(
            ["run", *FAST, "--method", "uniform", "--budget", "120", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.run/1"
        assert payload["config"]["method"] == "uniform"
        assert payload["result"]["spent"] == pytest.approx(120.0)
        assert payload["fulfillments"], "fulfillment log missing"
        assert set(payload["fulfillments"][0]) >= {
            "slice", "requested", "delivered", "status", "provenance",
        }
        assert "results" in payload["cache"]

    def test_campaign_list_and_show_json(self, capsys, tmp_path):
        import json

        store = str(tmp_path / "camp.sqlite")
        assert main(
            ["campaign", "start", "--name", "jsonny", *CAMPAIGN_FAST,
             "--store", store, "--quiet"]
        ) == 0
        capsys.readouterr()

        assert main(["campaign", "list", "--store", store, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["schema"] == "repro.campaign.list/1"
        assert listing["campaigns"][0]["status"] == "completed"
        campaign_id = listing["campaigns"][0]["campaign_id"]

        assert main(
            ["campaign", "show", campaign_id, "--store", store, "--json"]
        ) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["schema"] == "repro.campaign.show/1"
        assert shown["campaign"]["campaign_id"] == campaign_id
        assert shown["campaign"]["spec"]["method"] == "moderate"
        kinds = {event["kind"] for event in shown["events"]}
        assert {"iteration", "completed"} <= kinds


class TestCacheCommand:
    """The persistent shared cache: --cache-dir plumbing + the cache family."""

    RUN = ["run", *FAST, "--method", "moderate", "--budget", "120", "--json"]

    def test_cache_family_needs_a_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE_DIR" in capsys.readouterr().err

    def test_warm_rerun_trains_nothing_and_matches(self, capsys, tmp_path):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main([*self.RUN, "--cache-dir", cache_dir]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["trainings_performed"] > 0

        # Every main() call opens a fresh cache handle over the same file —
        # the in-process analogue of a restart.
        assert main([*self.RUN, "--cache-dir", cache_dir]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["trainings_performed"] == 0
        assert warm["result"] == cold["result"]
        assert warm["cache"]["results"]["hits"] >= cold["trainings_performed"]

    def test_env_var_configures_the_cache(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert main(self.RUN) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["trainings_performed"] > 0
        assert main(self.RUN) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["trainings_performed"] == 0

        assert main(["cache", "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == "repro.cache/1"

    def test_stats_clear_and_gc(self, capsys, tmp_path):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main([*self.RUN, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == "repro.cache/1"
        assert set(stats["tiers"]) == {"memory", "results", "curves"}
        assert stats["tiers"]["results"]["entries"] > 0
        assert stats["tiers"]["results"]["size_bytes"] > 0
        assert stats["totals"]["misses"] > 0

        assert main(["cache", "gc", "--max-mb", "0", "--cache-dir", cache_dir]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["tiers"]["results"]["entries"] == 0

    def test_stats_table_lists_tiers(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        output = capsys.readouterr().out
        for tier in ("memory", "results", "curves", "total"):
            assert tier in output

    def test_workers_without_process_executor_exits_2(self, capsys):
        assert main([*self.RUN, "--workers", "2"]) == 2
        assert "error:" in capsys.readouterr().err


class TestJsonSchemaTags:
    """Every --json subcommand carries its schema tag (README inventory)."""

    RUN = ["run", *FAST, "--method", "moderate", "--budget", "120", "--json"]

    def test_strategies_json(self, capsys):
        import json

        assert main(["strategies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.strategies/1"
        names = {entry["name"] for entry in payload["strategies"]}
        assert {"uniform", "water_filling", "moderate"} <= names
        assert all(
            {"name", "kind", "uses_lambda", "description"} <= set(entry)
            for entry in payload["strategies"]
        )

    def test_sources_json(self, capsys):
        import json

        assert main(["sources", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.sources/1"
        assert {entry["name"] for entry in payload["sources"]} >= {"pool"}

    def test_cache_clear_json(self, capsys, tmp_path):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main([*self.RUN, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(
            ["cache", "clear", "--cache-dir", cache_dir, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.cache.clear/1"
        assert payload["removed_results"] > 0
        assert payload["freed_bytes"] > 0
        assert payload["path"].startswith(cache_dir)

    def test_cache_gc_json_and_eviction_counters(self, capsys, tmp_path):
        """gc evictions must surface in a later ``cache stats --json``."""
        import json

        from repro.engine.diskcache import SqliteResultCache, default_cache_path

        cache_dir = str(tmp_path / "cache")
        assert main([*self.RUN, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        # Plain runs only populate the results tier; seed one curve so the
        # gc demonstrably evicts across both disk tiers.
        with SqliteResultCache(default_cache_path(cache_dir)) as handle:
            handle.store_curve("curve-key", {"b": 2.5, "a": 0.7})

        assert main(
            ["cache", "gc", "--max-mb", "0", "--cache-dir", cache_dir, "--json"]
        ) == 0
        gc_payload = json.loads(capsys.readouterr().out)
        assert gc_payload["schema"] == "repro.cache.gc/1"
        assert gc_payload["max_mb"] == 0.0
        evicted = gc_payload["removed_results"] + gc_payload["removed_curves"]
        assert evicted > 0
        assert gc_payload["remaining_bytes"] == 0

        # The eviction counters are persisted in the cache file, so a fresh
        # handle (a new CLI invocation) still reports them — and the totals
        # row aggregates across every tier, curves included.
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        per_tier = sum(t["evictions"] for t in stats["tiers"].values())
        assert per_tier >= evicted
        assert stats["totals"]["evictions"] == per_tier
        assert stats["tiers"]["curves"]["evictions"] > 0

    def test_report_json_tag(self, capsys, tmp_path):
        import json

        from repro.campaigns.store import CampaignRecord, SqliteStore

        store_path = str(tmp_path / "camp.sqlite")
        with SqliteStore(store_path) as store:
            store.create_campaign(
                CampaignRecord(
                    campaign_id="c-1",
                    name="c",
                    fingerprint="fp",
                    spec={"name": "c", "budget": 10.0},
                    status="completed",
                    priority=0,
                )
            )
        assert main(["report", "summary", "--store", store_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.report/1"
