"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, run_curves, run_plan

#: Small, fast arguments shared by the CLI tests (adult_like is the cheapest
#: dataset: 4 slices, binary labels).
FAST = [
    "--dataset", "adult_like",
    "--initial-size", "60",
    "--validation-size", "60",
    "--epochs", "10",
    "--curve-points", "3",
    "--seed", "0",
]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["curves", "--dataset", "imagenet"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--methods", "alchemy"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "fashion_like"
        assert "moderate" in args.methods

    def test_any_registered_strategy_accepted(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "bandit", "Water_Filling", "moderate"]
        )
        assert args.methods == ["bandit", "water_filling", "moderate"]


class TestSubcommands:
    def test_curves_lists_every_slice(self, capsys):
        exit_code = main(["curves", *FAST])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("White_Male", "White_Female", "Black_Male", "Black_Female"):
            assert name in output
        assert "reliability" in output

    def test_plan_prints_allocation(self, capsys):
        exit_code = main(["plan", *FAST, "--budget", "80", "--lam", "1.0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "examples to acquire" in output
        assert "cost" in output

    def test_compare_prints_methods_table(self, capsys):
        exit_code = main(
            [
                "compare",
                *FAST,
                "--budget", "60",
                "--methods", "uniform", "oneshot",
                "--trials", "1",
                "--show-allocations",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "original" in output
        assert "uniform" in output and "oneshot" in output
        assert "Avg./Max. EER" in output
        assert "Mean examples acquired per slice" in output

    def test_run_helpers_return_text(self):
        args = build_parser().parse_args(["curves", *FAST])
        assert "Learning curves" in run_curves(args)
        args = build_parser().parse_args(["plan", *FAST, "--budget", "40"])
        assert "total" in run_plan(args)

    def test_strategies_lists_registry(self, capsys):
        exit_code = main(["strategies"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in (
            "oneshot",
            "conservative",
            "moderate",
            "aggressive",
            "uniform",
            "water_filling",
            "proportional",
            "bandit",
        ):
            assert name in output
        assert "iterative" in output

    def test_sources_lists_provider_registry(self, capsys):
        exit_code = main(["sources"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("generator", "pool", "crowdsourcing", "composite", "throttled"):
            assert name in output

    def test_run_prints_fulfillment_log(self, capsys):
        exit_code = main(
            [
                "run",
                *FAST,
                "--budget", "60",
                "--method", "uniform",
                "--source", "mixed",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Fulfillment log" in output
        assert "provenance" in output
        assert "pool" in output and "generator" in output

    def test_run_flaky_scenario_with_rounds(self, capsys):
        exit_code = main(
            [
                "run",
                *FAST,
                "--scenario", "flaky_source",
                "--budget", "60",
                "--method", "uniform",
                "--rounds", "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throttled_generator" in output

    def test_run_rejects_unknown_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--source", "teleporter"])
