"""Shared fixtures for the analytics test suite.

``fill_store`` builds the canonical multi-campaign event log the whole
suite exercises: a completed campaign with fulfillments, a resumed one
with interleaved generations + a mid-run reslice + a partial (failover)
fulfillment, and a failed campaign with no events at all.  Every shape
the SQL views must handle — generation collapse, curve drift, empty
campaigns — appears at least once.
"""

from __future__ import annotations

import pytest

from repro.campaigns.store import CampaignRecord, InMemoryStore, SqliteStore


def fill_store(store) -> None:
    """Populate any CampaignStore with the canonical three-campaign log."""
    specs = [
        ("c-alpha", "alpha", 0, 300.0),
        ("c-beta", "beta", 1, 500.0),
        ("c-gamma", "gamma", 0, 200.0),
    ]
    for cid, name, priority, budget in specs:
        store.create_campaign(
            CampaignRecord(
                campaign_id=cid,
                name=name,
                fingerprint=f"fp-{cid}",
                spec={"name": name, "budget": budget},
                status="running",
                priority=priority,
                created_at=1000.0,
            )
        )
    # alpha: three generation-0 iterations with fulfillments; completed.
    # The s1 curve drifts at iteration 2, so cache_trends sees one
    # non-reusable transition in an otherwise stable campaign.
    for it in range(3):
        store.append_event(
            "c-alpha",
            generation=0,
            iteration=it,
            kind="iteration",
            payload={
                "iteration": it,
                "requested": {"s0": 5, "s1": 3},
                "acquired": {"s0": 5, "s1": 2},
                "spent": 7.25 + it,
                "limit": 100.0,
                "imbalance_before": 1.5,
                "imbalance_after": 1.2,
                "curve_parameters": {
                    "s0": [2.5, 0.7],
                    "s1": [3.0, 0.5 + (it > 1) * 0.1],
                },
            },
        )
        store.append_event(
            "c-alpha",
            generation=0,
            iteration=it,
            kind="fulfillment",
            payload={
                "slice": "s0",
                "requested": 5,
                "effective": 5,
                "delivered": 5,
                "shortfall": 0,
                "unit_cost": 1.0,
                "cost": 5.0,
                "provenance": ["pool"],
                "contributions": {"pool": 5},
                "rounds": 1,
                "status": "fulfilled",
                "tag": f"iteration:{it}",
            },
        )
    store.append_event(
        "c-alpha",
        generation=0,
        iteration=-1,
        kind="completed",
        payload={"result": {"ok": True}},
    )
    store.set_status("c-alpha", "completed")
    # beta: resumed — generation 0 runs iterations 0-2, generation 1
    # re-does iteration 2 (replay must keep only the newer one), then a
    # reslice event and an iteration over the new slice set.  One partial
    # fulfillment with two providers exercises the failover counters.
    for it in range(3):
        store.append_event(
            "c-beta",
            generation=0,
            iteration=it,
            kind="iteration",
            payload={
                "iteration": it,
                "acquired": {"a": 4, "b": 1},
                "spent": 3.5,
                "limit": 80.0,
                "imbalance_before": 2.0,
                "imbalance_after": 1.8,
                "curve_parameters": {"a": [1.5, 0.9], "b": [2.2, 0.4]},
            },
        )
    store.append_event(
        "c-beta",
        generation=0,
        iteration=1,
        kind="fulfillment",
        payload={
            "slice": "a",
            "requested": 4,
            "effective": 4,
            "delivered": 2,
            "shortfall": 2,
            "unit_cost": 2.0,
            "cost": 4.0,
            "provenance": ["pool", "synth"],
            "contributions": {"pool": 1, "synth": 1},
            "rounds": 2,
            "status": "partial",
            "tag": "iteration:1",
        },
    )
    store.append_event(
        "c-beta",
        generation=1,
        iteration=2,
        kind="iteration",
        payload={
            "iteration": 2,
            "acquired": {"a": 4, "b": 1},
            "spent": 3.5,
            "limit": 80.0,
            "imbalance_before": 2.0,
            "imbalance_after": 1.8,
            "curve_parameters": {"a": [1.5, 0.9], "b": [2.2, 0.4]},
        },
    )
    store.append_event(
        "c-beta",
        generation=1,
        iteration=3,
        kind="reslice",
        payload={
            "slice_generation": 1,
            "method": "kmeans",
            "fingerprint": "abc",
            "slice_names": ["a1", "a2", "b"],
        },
    )
    store.append_event(
        "c-beta",
        generation=1,
        iteration=3,
        kind="iteration",
        payload={
            "iteration": 3,
            "acquired": {"a1": 2, "a2": 2, "b": 0},
            "spent": 2.0,
            "limit": 80.0,
            "imbalance_before": 1.9,
            "imbalance_after": 1.7,
            "curve_parameters": {
                "a1": [1.1, 0.8],
                "a2": [1.2, 0.85],
                "b": [2.2, 0.4],
            },
        },
    )
    # gamma: failed before producing any events — every view must still
    # account for it (zero rows, or explicit zero totals).
    store.set_status("c-gamma", "failed")


@pytest.fixture(params=["memory", "sqlite"])
def filled_store(request, tmp_path):
    """The canonical log on both store backends; closed on teardown."""
    if request.param == "memory":
        store = InMemoryStore()
    else:
        store = SqliteStore(str(tmp_path / "campaigns.sqlite"))
    fill_store(store)
    try:
        yield store
    finally:
        store.close()


@pytest.fixture
def filled_sqlite_path(tmp_path):
    """Path to a filled on-disk store (for CLI / read-only-attach tests)."""
    path = str(tmp_path / "campaigns.sqlite")
    with SqliteStore(path) as store:
        fill_store(store)
    return path
