"""Incremental refresh semantics: cursor, O(N) pulls, rebuild identity."""

from __future__ import annotations

import json
import os
import sqlite3

import pytest

from repro.analytics import Analytics, assert_consistent, default_analytics_path
from repro.campaigns.store import InMemoryStore, SqliteStore

from tests.analytics.conftest import fill_store


def _report_bytes(analytics: Analytics) -> str:
    """Canonical rendering of every report kind (for byte-identity checks)."""
    kinds = ("summary", "slices", "fulfillment", "fairness", "cache")
    return json.dumps(
        [analytics.report(kind) for kind in kinds], sort_keys=True
    )


def _append_iteration(store, campaign_id, iteration, generation=0, spent=2.0):
    store.append_event(
        campaign_id,
        generation=generation,
        iteration=iteration,
        kind="iteration",
        payload={
            "iteration": iteration,
            "acquired": {"s0": 1, "s1": 1},
            "spent": spent,
            "limit": 100.0,
            "imbalance_before": 1.2,
            "imbalance_after": 1.1,
            "curve_parameters": {"s0": [2.5, 0.7], "s1": [3.1, 0.6]},
        },
    )


class TestIncrementalRefresh:
    def test_second_refresh_sees_nothing(self, filled_store):
        with Analytics(filled_store, path=":memory:") as analytics:
            first = analytics.refresh()
            assert first["events_seen"] > 0
            assert first["campaigns"] == 3
            again = analytics.refresh()
            assert again["events_seen"] == 0
            assert again["cursor"] == first["cursor"]

    def test_refresh_pulls_only_new_events(self, filled_store):
        with Analytics(filled_store, path=":memory:") as analytics:
            analytics.refresh()
            _append_iteration(filled_store, "c-alpha", 3)
            stats = analytics.refresh()
            assert stats["events_seen"] == 1
            assert stats["events_kept"] == 1

    def test_incremental_equals_rebuild_byte_for_byte(self, filled_store):
        with Analytics(filled_store, path=":memory:") as analytics:
            analytics.refresh()
            # Grow the log in three separate refresh rounds, including a
            # generation bump that must evict a mirrored row.
            _append_iteration(filled_store, "c-alpha", 3)
            analytics.refresh()
            _append_iteration(filled_store, "c-beta", 3, generation=2, spent=9.0)
            analytics.refresh()
            filled_store.set_status("c-beta", "paused")
            analytics.refresh()
            incremental = _report_bytes(analytics)
            analytics.rebuild()
            assert _report_bytes(analytics) == incremental
            assert_consistent(filled_store, analytics)

    def test_stale_generation_arriving_late_is_dropped(self, filled_store):
        with Analytics(filled_store, path=":memory:") as analytics:
            analytics.refresh()
            before = analytics.rows("campaign_costs", "c-beta")
            # A generation-0 echo of an iteration already mirrored at
            # generation 1 must not resurface.
            _append_iteration(filled_store, "c-beta", 3, generation=0, spent=99.0)
            stats = analytics.refresh()
            assert stats["events_seen"] == 1
            assert stats["events_kept"] == 0
            assert analytics.rows("campaign_costs", "c-beta") == before
            incremental = _report_bytes(analytics)
            analytics.rebuild()
            assert _report_bytes(analytics) == incremental

    def test_status_changes_propagate_without_new_events(self, filled_store):
        with Analytics(filled_store, path=":memory:") as analytics:
            analytics.refresh()
            filled_store.set_status("c-beta", "completed")
            analytics.refresh()
            rows = {r[0]: r[2] for r in analytics.rows("campaign_rollup")}
            assert rows["c-beta"] == "completed"


class TestDurability:
    def test_default_path_sits_next_to_the_store(self, tmp_path):
        path = str(tmp_path / "campaigns.sqlite")
        with SqliteStore(path) as store:
            assert default_analytics_path(store) == path + ".analytics"
        assert default_analytics_path(InMemoryStore()) == ":memory:"

    def test_cursor_survives_reopen(self, filled_sqlite_path):
        with SqliteStore(filled_sqlite_path) as store:
            with Analytics(store) as analytics:
                first = analytics.refresh()
                assert os.path.exists(filled_sqlite_path + ".analytics")
            with Analytics(store) as reopened:
                assert reopened.cursor == first["cursor"]
                assert reopened.refresh()["events_seen"] == 0

    def test_schema_version_bump_resets_the_mirror(self, filled_sqlite_path):
        with SqliteStore(filled_sqlite_path) as store:
            with Analytics(store) as analytics:
                analytics.refresh()
                analytics._conn.execute(
                    "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
                )
                analytics._conn.commit()
            with Analytics(store) as reopened:
                assert reopened.cursor == 0
                reopened.refresh()
                assert_consistent(store, reopened)

    def test_remove_deletes_the_analytics_file(self, filled_sqlite_path):
        with SqliteStore(filled_sqlite_path) as store:
            analytics = Analytics(store)
            analytics.refresh()
            analytics.remove()
            assert not os.path.exists(filled_sqlite_path + ".analytics")

    def test_store_file_is_opened_read_only(self, filled_sqlite_path, monkeypatch):
        """The refresh pull must never write to the campaign store."""
        real_connect = sqlite3.connect
        seen: list[tuple] = []

        def spy(*args, **kwargs):
            seen.append((args, kwargs))
            return real_connect(*args, **kwargs)

        monkeypatch.setattr(sqlite3, "connect", spy)
        with SqliteStore(filled_sqlite_path) as store:
            with Analytics(store, path=":memory:") as analytics:
                analytics.refresh()
        store_connections = [
            (args, kwargs)
            for args, kwargs in seen
            if filled_sqlite_path in str(args[0]) and "analytics" not in str(args[0])
        ]
        uri_reads = [
            (args, kwargs)
            for args, kwargs in store_connections
            if str(args[0]).startswith("file:")
        ]
        assert uri_reads, "expected a read-only URI connection to the store"
        for args, kwargs in uri_reads:
            assert "mode=ro" in str(args[0])
            assert kwargs.get("uri") is True


class TestInMemoryStoreSupport:
    def test_protocol_path_matches_sqlite_path(self, tmp_path):
        """Both pull paths must mirror identical payload text."""
        memory = InMemoryStore()
        fill_store(memory)
        disk = SqliteStore(str(tmp_path / "s.sqlite"))
        fill_store(disk)
        try:
            with Analytics(memory, path=":memory:") as a_mem, Analytics(
                disk, path=":memory:"
            ) as a_disk:
                a_mem.refresh()
                a_disk.refresh()
                assert _report_bytes(a_mem) == _report_bytes(a_disk)
        finally:
            disk.close()

    def test_in_memory_store_raises_no_uri_tricks(self):
        store = InMemoryStore()
        fill_store(store)
        with Analytics(store) as analytics:
            assert analytics.path == ":memory:"
            analytics.refresh()
            assert_consistent(store, analytics)
