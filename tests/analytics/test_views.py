"""SQL views vs. the pure-Python reference, plus hand-checked contents.

``assert_consistent`` does the heavy lifting (every view, row for row,
cell for cell); the content tests here pin the *semantics* to hand-computed
numbers so a bug that breaks view and reference identically still fails.
"""

from __future__ import annotations

import pytest

from repro.analytics import (
    Analytics,
    REPORT_SECTIONS,
    VIEW_DEFINITIONS,
    assert_consistent,
    reference_rows,
)
from repro.utils.exceptions import AnalyticsError


@pytest.fixture
def analytics(filled_store):
    with Analytics(filled_store, path=":memory:") as a:
        a.refresh()
        yield a


class TestConsistency:
    def test_every_view_matches_its_reference(self, filled_store):
        counts = assert_consistent(filled_store)
        assert set(counts) == set(VIEW_DEFINITIONS)
        assert all(n >= 0 for n in counts.values())
        # The fixture exercises every view with at least one row.
        assert counts["campaign_rollup"] == 3
        assert counts["reslice_trends"] == 1

    def test_per_campaign_filters_match_reference(self, filled_store, analytics):
        for view, definition in VIEW_DEFINITIONS.items():
            if not definition.campaign_filterable:
                continue
            for cid in ("c-alpha", "c-beta", "c-gamma"):
                assert analytics.rows(view, cid) == [
                    tuple(r) for r in reference_rows(filled_store, view, cid)
                ]

    def test_mismatch_is_reported_with_view_and_row(self, filled_store, analytics):
        # Corrupt one mirrored payload; the verifier must name the view.
        analytics._conn.execute(
            "UPDATE events SET payload = json_set(payload, '$.spent', 999.0) "
            "WHERE kind = 'iteration' AND campaign_id = 'c-alpha' "
            "AND iteration = 0"
        )
        with pytest.raises(
            AnalyticsError, match=r"view '\w+' row \d+ column 'spent'"
        ):
            assert_consistent(filled_store, analytics)


class TestRollup:
    def test_hand_computed_rollup(self, analytics):
        rows = analytics.rows("campaign_rollup")
        assert rows == [
            ("c-alpha", "alpha", "completed", 0, 300.0, 3, 24.75, 3, 0, 0, 7),
            ("c-beta", "beta", "running", 1, 500.0, 4, 12.5, 1, 2, 1, 6),
            ("c-gamma", "gamma", "failed", 0, 200.0, 0, 0.0, 0, 0, 0, 0),
        ]


class TestFulfillment:
    def test_shortfall_and_failover_rates(self, analytics):
        rows = {r[0]: r for r in analytics.rows("fulfillment_rates")}
        columns = analytics.columns("fulfillment_rates")
        alpha = dict(zip(columns, rows["c-alpha"]))
        assert alpha["fulfillments"] == 3
        assert alpha["requested"] == alpha["delivered"] == 15
        assert alpha["shortfall_rate"] == 0.0
        assert alpha["failover_rate"] == 0.0
        beta = dict(zip(columns, rows["c-beta"]))
        assert beta["shortfall"] == 2
        assert beta["shortfall_rate"] == 0.5  # 2 of 4 effective
        assert beta["failovers"] == 1  # provenance ["pool", "synth"]
        assert beta["failover_rate"] == 1.0
        assert beta["degraded"] == 1
        # The failed campaign still gets an explicit zero row.
        assert rows["c-gamma"][1:] == (0, 0, 0, 0, 0, 0.0, 0, 0, 0.0, 0.0)


class TestFairness:
    def test_lane_shares(self, analytics):
        rows = analytics.rows("lane_fairness")
        columns = analytics.columns("lane_fairness")
        lanes = {r[0]: dict(zip(columns, r)) for r in rows}
        assert set(lanes) == {0, 1}
        # Lane 0 = alpha + gamma; lane 1 = beta alone.
        assert lanes[0]["campaigns"] == 2
        assert lanes[0]["completed"] == 1
        assert lanes[0]["spent"] == 24.75
        assert lanes[1]["iterations"] == 4
        assert lanes[1]["spent"] == 12.5
        total = lanes[0]["spent"] + lanes[1]["spent"]
        assert lanes[0]["spent_share"] == lanes[0]["spent"] / total
        assert lanes[0]["budget_share"] == 0.5  # 500 of 1000
        assert lanes[0]["spent_share"] + lanes[1]["spent_share"] == pytest.approx(1.0)

    def test_fairness_is_not_per_campaign(self, analytics):
        with pytest.raises(AnalyticsError, match="global"):
            analytics.rows("lane_fairness", "c-alpha")


class TestTrajectories:
    def test_cumulative_acquisition_per_slice(self, analytics):
        rows = [r for r in analytics.rows("slice_trajectories") if r[0] == "c-alpha"]
        s0 = [(r[1], r[3], r[4]) for r in rows if r[2] == "s0"]
        assert s0 == [(0, 5, 5), (1, 5, 10), (2, 5, 15)]
        # Curve parameters ride along; s1 drifts at iteration 2.
        s1_curves = [(r[5], r[6]) for r in rows if r[2] == "s1"]
        assert s1_curves == [(3.0, 0.5), (3.0, 0.5), (3.0, 0.6)]

    def test_generation_collapse_keeps_newest(self, analytics):
        # beta iteration 2 exists at generations 0 and 1; exactly one
        # mirrored copy must survive, so the cum_spent trajectory has
        # one row per iteration.
        rows = [r for r in analytics.rows("campaign_costs") if r[0] == "c-beta"]
        assert [r[1] for r in rows] == [0, 1, 2, 3]
        assert [r[3] for r in rows] == [3.5, 7.0, 10.5, 12.5]


class TestCacheAndReslice:
    def test_curve_reuse_counts(self, analytics):
        rows = {
            (r[0], r[1]): r for r in analytics.rows("cache_trends")
        }
        # alpha iter 1: both curves unchanged -> full reuse.
        assert rows[("c-alpha", 1)][2:] == (2, 2, 2, 1.0)
        # alpha iter 2: s1 drifted -> half reuse.
        assert rows[("c-alpha", 2)][2:] == (2, 1, 2, 0.5)
        # beta iter 3 is post-reslice: only slice b has a predecessor.
        assert rows[("c-beta", 3)][2:] == (3, 1, 1, 1.0)

    def test_reslice_generation_high_water_mark(self, analytics):
        rows = analytics.rows("reslice_trends")
        assert len(rows) == 1
        (campaign, _seq, iteration, gen, max_gen, method, n, fp) = rows[0]
        assert (campaign, iteration, gen, max_gen) == ("c-beta", 3, 1, 1)
        assert (method, n, fp) == ("kmeans", 3, "abc")


class TestReportPayloads:
    def test_sections_follow_the_kind_map(self, analytics):
        for kind, views in REPORT_SECTIONS.items():
            payload = analytics.report(kind)
            assert payload["schema"] == "repro.report/1"
            assert payload["report"] == kind
            assert tuple(payload["sections"]) == views
            for view, section in payload["sections"].items():
                assert section["columns"] == list(VIEW_DEFINITIONS[view].columns)

    def test_unknown_kind_rejected(self, analytics):
        with pytest.raises(AnalyticsError, match="unknown report"):
            analytics.report("bogus")

    def test_unknown_view_rejected(self, analytics):
        with pytest.raises(AnalyticsError, match="unknown analytics view"):
            analytics.rows("nope")
