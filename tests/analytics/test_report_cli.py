"""The ``report`` CLI subcommand: text, --quiet, --json, --verify, errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

KINDS = ("summary", "slices", "fulfillment", "fairness", "cache")


def run_json(capsys, *argv):
    assert main(list(argv)) == 0
    return json.loads(capsys.readouterr().out)


class TestReportCommand:
    def test_text_mode_renders_one_table_per_section(
        self, capsys, filled_sqlite_path
    ):
        assert main(["report", "summary", "--store", filled_sqlite_path]) == 0
        out = capsys.readouterr().out
        assert "report: summary (all campaigns)" in out
        assert "campaign_rollup" in out
        for cid in ("c-alpha", "c-beta", "c-gamma"):
            assert cid in out

    def test_every_kind_emits_a_tagged_payload(self, capsys, filled_sqlite_path):
        for kind in KINDS:
            payload = run_json(
                capsys, "report", kind, "--store", filled_sqlite_path, "--json"
            )
            assert payload["schema"] == "repro.report/1"
            assert payload["report"] == kind
            assert payload["cursor"] > 0
            assert payload["sections"]

    def test_verify_reports_row_counts(self, capsys, filled_sqlite_path):
        payload = run_json(
            capsys,
            "report",
            "summary",
            "--store",
            filled_sqlite_path,
            "--verify",
            "--json",
        )
        assert payload["verified"]["campaign_rollup"] == 3
        assert main(
            ["report", "summary", "--store", filled_sqlite_path, "--verify"]
        ) == 0
        assert "verified: every SQL view matches" in capsys.readouterr().out

    def test_quiet_prints_one_line(self, capsys, filled_sqlite_path):
        assert main(
            ["report", "fairness", "--store", filled_sqlite_path, "--quiet"]
        ) == 0
        out = capsys.readouterr().out.strip()
        assert len(out.splitlines()) == 1
        assert out.startswith("fairness")

    def test_campaign_filter(self, capsys, filled_sqlite_path):
        payload = run_json(
            capsys,
            "report",
            "slices",
            "--store",
            filled_sqlite_path,
            "--campaign",
            "c-alpha",
            "--json",
        )
        assert payload["campaign_id"] == "c-alpha"
        rows = payload["sections"]["slice_trajectories"]["rows"]
        assert rows and all(row[0] == "c-alpha" for row in rows)

    def test_rebuild_equals_incremental(self, capsys, filled_sqlite_path):
        base = ["report", "summary", "--store", filled_sqlite_path, "--json"]
        assert run_json(capsys, *base) == run_json(capsys, *base, "--rebuild")

    def test_missing_store_exits_2(self, capsys, tmp_path):
        assert main(
            ["report", "summary", "--store", str(tmp_path / "nope.sqlite")]
        ) == 2
        assert "no campaign store" in capsys.readouterr().err

    def test_fairness_rejects_campaign_filter(self, capsys, filled_sqlite_path):
        assert main(
            [
                "report",
                "fairness",
                "--store",
                filled_sqlite_path,
                "--campaign",
                "c-alpha",
            ]
        ) == 2
        assert "global" in capsys.readouterr().err

    def test_unknown_kind_rejected_by_argparse(self, filled_sqlite_path):
        with pytest.raises(SystemExit):
            main(["report", "bogus", "--store", filled_sqlite_path])

    def test_analytics_db_is_reused_across_calls(
        self, capsys, filled_sqlite_path, tmp_path
    ):
        db = str(tmp_path / "reports.analytics")
        args = [
            "report",
            "summary",
            "--store",
            filled_sqlite_path,
            "--analytics",
            db,
            "--quiet",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
