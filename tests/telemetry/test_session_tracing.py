"""Session-level tracing: span trees, scope routing, and byte identity.

The load-bearing guarantee lives here: a traced run and an untraced run of
the same tuner produce byte-identical results, on the serial executor and
on the process pool (whose workers ship their spans back with the job
results).
"""

from __future__ import annotations

from repro.acquisition.source import GeneratorDataSource
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.engine.executor import ProcessPoolExecutor


def make_tuner(task, fast_training, fast_curves, executor=None) -> SliceTuner:
    """One deterministically seeded tuner on a fresh dataset instance."""
    sliced = task.initial_sliced_dataset(30, 50, random_state=0)
    source = GeneratorDataSource(task, random_state=1)
    return SliceTuner(
        sliced,
        source,
        trainer_config=fast_training,
        curve_config=fast_curves,
        config=SliceTunerConfig(evaluation_trials=1, max_iterations=4),
        random_state=0,
        executor=executor,
    )


def run_result_json(task, fast_training, fast_curves, executor=None) -> str:
    tuner = make_tuner(task, fast_training, fast_curves, executor=executor)
    session = tuner.session()
    for _ in session.stream(budget=60, strategy="moderate"):
        pass
    return session.result().to_json()


class TestByteIdentity:
    def test_serial_traced_equals_untraced(
        self, tiny_task, fast_training, fast_curves, live_tracer
    ):
        from repro.telemetry import set_tracer

        tracer, sink = live_tracer
        traced = run_result_json(tiny_task, fast_training, fast_curves)
        assert len(sink.spans()) > 0  # tracing was actually on
        previous = set_tracer(None)
        try:
            untraced = run_result_json(tiny_task, fast_training, fast_curves)
        finally:
            set_tracer(previous)
        assert traced == untraced

    def test_process_pool_traced_equals_untraced(
        self, tiny_task, fast_training, fast_curves, live_tracer
    ):
        from repro.telemetry import set_tracer

        tracer, sink = live_tracer
        with ProcessPoolExecutor(max_workers=2) as executor:
            traced = run_result_json(
                tiny_task, fast_training, fast_curves, executor=executor
            )
        job_spans = [s for s in sink.spans() if s.name == "engine.job"]
        assert job_spans  # workers shipped their spans back
        previous = set_tracer(None)
        try:
            untraced = run_result_json(tiny_task, fast_training, fast_curves)
        finally:
            set_tracer(previous)
        assert traced == untraced


class TestSpanTree:
    def test_iterations_form_a_well_nested_tree(
        self, tiny_task, fast_training, fast_curves, live_tracer
    ):
        _, sink = live_tracer
        run_result_json(tiny_task, fast_training, fast_curves)
        spans = sink.spans()
        by_id = {span.span_id: span for span in spans}
        iterations = [s for s in spans if s.name == "session.iteration"]
        assert iterations
        assert [s.baggage["iteration"] for s in iterations] == list(
            range(1, len(iterations) + 1)
        )
        # Every acquisition span sits under exactly one iteration span (or
        # the iteration-0 top-up) of the same scope.
        scopes = {s.baggage.get("scope") for s in iterations}
        assert len(scopes) == 1
        for span in spans:
            if span.name in ("acquisition.fulfill", "engine.submit"):
                parent = by_id.get(span.parent_id)
                assert parent is not None, span
                assert parent.name in ("session.iteration", "session.top_up")
                assert span.baggage.get("scope") == parent.baggage.get("scope")
            if span.name == "acquisition.provider":
                parent = by_id.get(span.parent_id)
                assert parent is not None and parent.name == "acquisition.fulfill"

    def test_on_span_hook_sees_only_its_own_sessions_spans(
        self, tiny_task, fast_training, fast_curves, live_tracer
    ):
        first_tuner = make_tuner(tiny_task, fast_training, fast_curves)
        second_tuner = make_tuner(tiny_task, fast_training, fast_curves)
        first_seen, second_seen = [], []
        first = first_tuner.session()
        first.on_span(first_seen.append)
        second = second_tuner.session()
        second.on_span(second_seen.append)
        for _ in first.stream(budget=60, strategy="moderate"):
            pass
        for _ in second.stream(budget=60, strategy="moderate"):
            pass
        assert first_seen and second_seen
        first_scopes = {span.baggage.get("scope") for span in first_seen}
        second_scopes = {span.baggage.get("scope") for span in second_seen}
        assert len(first_scopes) == len(second_scopes) == 1
        assert first_scopes.isdisjoint(second_scopes)

    def test_untraced_session_fires_no_span_hooks(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        seen = []
        session = tuner.session()
        session.on_span(seen.append)
        for _ in session.stream(budget=60, strategy="moderate"):
            pass
        assert seen == []

    def test_session_iteration_counter_increments(
        self, tiny_task, fast_training, fast_curves, live_tracer
    ):
        from repro.telemetry import get_registry

        _, sink = live_tracer
        run_result_json(tiny_task, fast_training, fast_curves)
        iterations = [s for s in sink.spans() if s.name == "session.iteration"]
        counters = get_registry().snapshot()["counters"]
        assert counters["session.iterations"] == len(iterations)
