"""CLI surface of the telemetry layer: --trace-out and the subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry import get_tracer

#: Small, fast arguments shared by the traced-run tests.
FAST = [
    "--dataset", "adult_like",
    "--initial-size", "60",
    "--validation-size", "60",
    "--epochs", "10",
    "--curve-points", "3",
    "--seed", "0",
    "--budget", "200",
]


def run_traced(tmp_path, capsys) -> str:
    trace_dir = str(tmp_path / "trace")
    assert main(["run", *FAST, "--trace-out", trace_dir, "--quiet"]) == 0
    capsys.readouterr()
    return trace_dir


class TestTraceOut:
    def test_traced_run_writes_spans_and_metrics(self, capsys, tmp_path):
        trace_dir = run_traced(tmp_path, capsys)
        assert (tmp_path / "trace" / "spans.jsonl").exists()
        assert (tmp_path / "trace" / "metrics.json").exists()
        # The lifecycle restored the no-op tracer after the command.
        assert not get_tracer().enabled

    def test_traced_and_untraced_runs_emit_identical_json(
        self, capsys, tmp_path
    ):
        assert main(["run", *FAST, "--json"]) == 0
        untraced = capsys.readouterr().out
        trace_dir = str(tmp_path / "trace")
        assert main(["run", *FAST, "--trace-out", trace_dir, "--json"]) == 0
        traced = capsys.readouterr().out
        assert traced == untraced

    def test_env_var_configures_tracing(self, capsys, tmp_path, monkeypatch):
        trace_dir = tmp_path / "envtrace"
        monkeypatch.setenv("REPRO_TRACE_DIR", str(trace_dir))
        assert main(["run", *FAST, "--quiet"]) == 0
        assert (trace_dir / "spans.jsonl").exists()


class TestTelemetrySubcommand:
    def test_summary_json_schema(self, capsys, tmp_path):
        trace_dir = run_traced(tmp_path, capsys)
        assert main(
            ["telemetry", "summary", "--trace-dir", trace_dir, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.telemetry/1"
        assert payload["kind"] == "summary"
        assert payload["span_count"] > 0
        assert "session.iteration" in payload["spans"]
        entry = payload["spans"]["session.iteration"]
        assert set(entry) == {
            "count", "errors", "total_seconds", "mean_seconds", "max_seconds",
        }
        assert payload["counters"]["session.iterations"] == entry["count"]

    def test_spans_filter_and_limit(self, capsys, tmp_path):
        trace_dir = run_traced(tmp_path, capsys)
        assert main(
            [
                "telemetry", "spans", "--trace-dir", trace_dir,
                "--name", "session.iteration", "--limit", "1", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["span_count"] == 1
        assert payload["spans"][0]["name"] == "session.iteration"

    def test_metrics_reads_the_snapshot(self, capsys, tmp_path):
        trace_dir = run_traced(tmp_path, capsys)
        assert main(
            ["telemetry", "metrics", "--trace-dir", trace_dir, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["session.iterations"] >= 1

    def test_missing_trace_dir_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        assert main(["telemetry", "summary"]) == 2
        assert "needs a trace directory" in capsys.readouterr().err

    def test_summary_table_lists_span_names(self, capsys, tmp_path):
        trace_dir = run_traced(tmp_path, capsys)
        assert main(["telemetry", "summary", "--trace-dir", trace_dir]) == 0
        output = capsys.readouterr().out
        assert "session.iteration" in output
        assert "acquisition.fulfill" in output
