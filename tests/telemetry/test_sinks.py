"""Tests for repro.telemetry.sinks and the configure/shutdown lifecycle."""

from __future__ import annotations

import json
import os

import repro.telemetry as telemetry
from repro.telemetry import (
    JsonlTraceSink,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    read_metrics,
    read_spans,
    set_registry,
    set_tracer,
    spans_path,
    summarize_spans,
    write_metrics_snapshot,
)


class TestJsonlRoundtrip:
    def test_spans_written_one_sorted_json_line_each(self, tmp_path):
        trace_dir = str(tmp_path)
        sink = JsonlTraceSink(spans_path(trace_dir))
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.close()
        lines = open(spans_path(trace_dir)).read().splitlines()
        assert len(lines) == 2
        assert all(line == json.dumps(json.loads(line), sort_keys=True) for line in lines)
        spans = read_spans(trace_dir)
        assert [span["name"] for span in spans] == ["inner", "outer"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]

    def test_read_spans_on_missing_dir_is_empty(self, tmp_path):
        assert read_spans(str(tmp_path / "nope")) == []

    def test_metrics_snapshot_merges_over_existing(self, tmp_path):
        trace_dir = str(tmp_path)
        first = MetricsRegistry()
        first.counter("n").inc(2)
        write_metrics_snapshot(trace_dir, first.snapshot())
        second = MetricsRegistry()
        second.counter("n").inc(3)
        write_metrics_snapshot(trace_dir, second.snapshot())
        assert read_metrics(trace_dir)["counters"]["n"] == 5

    def test_read_metrics_on_missing_file_is_empty(self, tmp_path):
        assert read_metrics(str(tmp_path)) == {}


class TestSummarizeSpans:
    def test_rollup_counts_errors_and_durations(self):
        spans = [
            {"name": "op", "duration": 0.2, "status": "ok"},
            {"name": "op", "duration": 0.4, "status": "error"},
            {"name": "other", "duration": 0.1, "status": "ok"},
        ]
        total, summary = summarize_spans(spans)
        assert total == 3
        assert list(summary) == ["op", "other"]  # sorted
        assert summary["op"] == {
            "count": 2,
            "errors": 1,
            "total_seconds": 0.6,
            "mean_seconds": 0.3,
            "max_seconds": 0.4,
        }

    def test_empty_input(self):
        assert summarize_spans([]) == (0, {})


class TestConfigureShutdown:
    def test_lifecycle_writes_spans_and_metrics(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        previous_registry = set_registry(MetricsRegistry())
        try:
            tracer = telemetry.configure(trace_dir=trace_dir)
            assert get_tracer() is tracer
            assert tracer.enabled
            with get_tracer().span("lifecycle.op"):
                get_registry().counter("lifecycle.count").inc()
            telemetry.shutdown()
            assert not get_tracer().enabled  # back to the no-op
            assert [s["name"] for s in read_spans(trace_dir)] == ["lifecycle.op"]
            assert read_metrics(trace_dir)["counters"]["lifecycle.count"] == 1
        finally:
            set_tracer(None)
            set_registry(previous_registry)

    def test_configure_without_dir_keeps_everything_in_memory(self, tmp_path):
        previous_registry = set_registry(MetricsRegistry())
        try:
            telemetry.configure()
            with get_tracer().span("memory.only"):
                pass
            telemetry.shutdown()
            assert os.listdir(str(tmp_path)) == []  # nothing written anywhere
        finally:
            set_tracer(None)
            set_registry(previous_registry)
