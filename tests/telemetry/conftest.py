"""Shared fixtures for the telemetry test suite.

Every test that turns tracing on goes through ``live_tracer``: a
CollectSink-backed :class:`Tracer` plus a fresh default registry, both
restored on teardown so telemetry state never leaks across tests (the rest
of the suite assumes the default no-op tracer).
"""

from __future__ import annotations

import pytest

from repro.telemetry import (
    CollectSink,
    MetricsRegistry,
    Tracer,
    set_registry,
    set_tracer,
)


@pytest.fixture
def live_tracer():
    """(tracer, sink): a live tracer collecting every span, restored after."""
    sink = CollectSink()
    tracer = Tracer(sinks=[sink])
    previous_tracer = set_tracer(tracer)
    previous_registry = set_registry(MetricsRegistry())
    try:
        yield tracer, sink
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)
