"""Concurrency guarantees: disjoint campaign span trees, worker shipping.

Two claims under test:

* driving N campaigns through one :class:`TunerService` (whose scheduler
  multiplexes them over one shared tracer) yields N *disjoint*, well-nested
  span trees — no span of one campaign is ever parented under, or persisted
  to, another campaign;
* a :class:`ProcessPoolExecutor` worker's spans survive the pickle
  round-trip: they come back with deterministic ids stitched under the
  parent process's ``engine.submit`` span, in submission order, without
  touching the job results.
"""

from __future__ import annotations

import numpy as np

from repro.campaigns import COMPLETED
from repro.engine.cache import InMemoryResultCache
from repro.engine.executor import ProcessPoolExecutor, SerialExecutor
from repro.engine.factories import get_model_factory
from repro.engine.job import TrainingJob
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.serve import TunerService
from repro.telemetry import derive_span_id

from tests.serve.conftest import tiny_spec


def _wait_done(service, campaign_id, timeout=120.0):
    import time

    deadline = time.monotonic() + timeout
    while service.status(campaign_id) != COMPLETED:
        assert time.monotonic() < deadline, service.status(campaign_id)
        service.wait_for_activity(0.1)


class TestDisjointCampaignTrees:
    def test_concurrent_campaigns_keep_disjoint_well_nested_trees(
        self, live_tracer
    ):
        n = 3
        service = TunerService().start()
        try:
            ids = [
                service.submit(tiny_spec(name=f"traced-{i}", seed=3 + i))[
                    "campaign_id"
                ]
                for i in range(n)
            ]
            assert len(set(ids)) == n
            for campaign_id in ids:
                _wait_done(service, campaign_id)
            per_campaign = {}
            for campaign_id in ids:
                events = service.store.events(campaign_id, kinds=("telemetry",))
                spans = [event.payload for event in events]
                assert spans, f"campaign {campaign_id} persisted no spans"
                per_campaign[campaign_id] = spans
            # Disjoint: no span id appears under two campaigns, and every
            # span's baggage scope is the campaign it was persisted to.
            id_sets = {
                campaign_id: {span["span_id"] for span in spans}
                for campaign_id, spans in per_campaign.items()
            }
            for campaign_id, spans in per_campaign.items():
                others = set().union(
                    *(ids_ for cid, ids_ in id_sets.items() if cid != campaign_id)
                )
                assert id_sets[campaign_id].isdisjoint(others)
                for span in spans:
                    assert span["baggage"]["scope"] == campaign_id
                    # Well-nested: a persisted parent is never another
                    # campaign's span (it is either this campaign's or an
                    # unpersisted ancestor like scheduler.step).
                    assert span["parent_id"] not in others
            # The per-campaign HTTP summary is built from these same events.
            summary = service.span_summary(ids[0])
            assert summary["span_count"] == len(per_campaign[ids[0]])
            assert summary["tracing"] is True
        finally:
            service.close()

    def test_metrics_endpoint_merges_service_and_process_registries(
        self, live_tracer
    ):
        service = TunerService().start()
        try:
            submitted = service.submit(tiny_spec(name="metrics"))
            _wait_done(service, submitted["campaign_id"])
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["scheduler.steps"] >= 1
            assert snapshot["counters"]["session.iterations"] >= 1
        finally:
            service.close()


class TestWorkerSpanShipping:
    def _jobs(self, count=4):
        rng = np.random.default_rng(42)
        jobs = []
        for index in range(count):
            dataset = Dataset(
                rng.normal(size=(25, 3)), rng.integers(0, 2, size=25)
            )
            jobs.append(
                TrainingJob(
                    train=dataset,
                    n_classes=2,
                    seed=200 + index,
                    trainer_config=TrainingConfig(epochs=2, batch_size=8),
                    model_factory=get_model_factory("softmax"),
                    factory_name="softmax",
                    tag=index,
                )
            )
        return jobs

    def test_worker_spans_round_trip_through_the_pool(self, live_tracer):
        _, sink = live_tracer
        jobs = self._jobs()
        with ProcessPoolExecutor(max_workers=2) as executor:
            results = executor.submit(jobs)
        assert [result.tag for result in results] == [0, 1, 2, 3]
        submits = [s for s in sink.spans() if s.name == "engine.submit"]
        assert len(submits) == 1
        job_spans = [s for s in sink.spans() if s.name == "engine.job"]
        assert len(job_spans) == len(jobs)
        # Shipped spans are stitched under the submit span with their
        # submission index as the sequence -> fully deterministic ids.
        job_spans.sort(key=lambda span: span.sequence)
        for index, span in enumerate(job_spans):
            assert span.parent_id == submits[0].span_id
            assert span.sequence == index
            assert span.span_id == derive_span_id(
                submits[0].span_id, "engine.job", index
            )
            assert span.duration is not None and span.duration > 0.0
            assert span.attributes["from_cache"] is False

    def test_shipping_does_not_change_results(self, live_tracer):
        jobs = self._jobs()
        serial = SerialExecutor().submit(jobs)
        with ProcessPoolExecutor(max_workers=2) as executor:
            parallel = executor.submit(jobs)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.model.weights, p.model.weights)
            assert s.training.train_losses == p.training.train_losses

    def test_worker_metrics_merge_into_the_parent_registry(self, live_tracer):
        from repro.telemetry import get_registry

        jobs = self._jobs()
        cache = InMemoryResultCache()
        with ProcessPoolExecutor(max_workers=2, cache=cache) as executor:
            executor.submit(jobs)
        counters = get_registry().snapshot()["counters"]
        assert counters["engine.jobs"] == len(jobs)
        assert counters["engine.cache_misses"] == len(jobs)
