"""Tests for repro.telemetry.trace: ids, nesting, propagation, the no-op."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    NOOP_TRACER,
    CollectSink,
    RingBufferSink,
    Span,
    Tracer,
    current_span,
    derive_span_id,
    get_tracer,
    set_tracer,
    traced,
)


class TestDeterministicIds:
    def test_id_is_a_pure_function_of_parent_name_sequence(self):
        first = derive_span_id("abc", "session.iteration", 3)
        assert first == derive_span_id("abc", "session.iteration", 3)
        assert len(first) == 16
        assert first != derive_span_id("abc", "session.iteration", 4)
        assert first != derive_span_id("abc", "session.reslice", 3)
        assert first != derive_span_id("xyz", "session.iteration", 3)

    def test_two_runs_produce_identical_trees(self):
        def run_once() -> list[tuple[str, str, int]]:
            sink = CollectSink()
            tracer = Tracer(sinks=[sink])
            for _ in range(2):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass
                    with tracer.span("inner"):
                        pass
            return [
                (span.span_id, span.parent_id, span.sequence)
                for span in sink.spans()
            ]

        assert run_once() == run_once()

    def test_sibling_sequences_increment_per_parent(self):
        sink = CollectSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        inner = [span for span in sink.spans() if span.name == "inner"]
        assert [span.sequence for span in inner] == [0, 1]
        assert inner[0].span_id != inner[1].span_id


class TestContextPropagation:
    def test_thread_local_nesting(self):
        sink = CollectSink()
        tracer = Tracer(sinks=[sink])
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        # Completion order is inner-first (spans emit on close).
        assert [span.name for span in sink.spans()] == ["inner", "outer"]

    def test_explicit_string_parent_and_sequence(self):
        tracer = Tracer(sinks=[CollectSink()])
        with tracer.span("engine.job", parent="feedbeef00000000", sequence=7) as span:
            pass
        assert span.parent_id == "feedbeef00000000"
        assert span.sequence == 7
        assert span.span_id == derive_span_id("feedbeef00000000", "engine.job", 7)

    def test_threads_do_not_share_context_stacks(self):
        tracer = Tracer(sinks=[CollectSink()])
        seen: list[Span | None] = []

        def worker() -> None:
            seen.append(tracer.current_span())
            with tracer.span("worker.root") as span:
                seen.append(span)

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread saw no inherited context: its root has no parent.
        assert seen[0] is None
        assert seen[1] is not None and seen[1].parent_id == ""

    def test_baggage_inherited_and_explicit_wins(self):
        tracer = Tracer(sinks=[CollectSink()])
        with tracer.span("outer", baggage={"scope": "a", "keep": 1}):
            with tracer.span("inner") as inherited:
                pass
            with tracer.span("inner", baggage={"scope": "b"}) as overridden:
                pass
        assert inherited.baggage == {"scope": "a", "keep": 1}
        assert overridden.baggage == {"scope": "b", "keep": 1}


class TestLifecycleAndEmission:
    def test_exception_marks_error_status(self):
        sink = CollectSink()
        tracer = Tracer(sinks=[sink])
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = sink.spans()
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"
        assert span.duration is not None and span.duration >= 0.0

    def test_to_dict_from_dict_roundtrip(self):
        sink = CollectSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("op", attributes={"k": 1}, baggage={"scope": "s"}):
            pass
        (span,) = sink.spans()
        rebuilt = Span.from_dict(span.to_dict())
        assert rebuilt.to_dict() == span.to_dict()

    def test_listeners_fire_and_remove(self):
        tracer = Tracer(sinks=[CollectSink()])
        seen: list[str] = []
        listener = lambda span: seen.append(span.name)  # noqa: E731
        tracer.add_listener(listener)
        with tracer.span("first"):
            pass
        tracer.remove_listener(listener)
        with tracer.span("second"):
            pass
        assert seen == ["first"]

    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[sink])
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [span.name for span in sink.spans()] == ["b", "c"]

    def test_ring_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferSink(capacity=0)


class TestGlobalTracer:
    def test_default_is_the_noop(self):
        assert get_tracer() is NOOP_TRACER
        assert not get_tracer().enabled
        with get_tracer().span("free") as span:
            span.set_attribute("ignored", True)  # absorbed, not recorded
        assert current_span() is None

    def test_set_tracer_installs_and_restores(self, live_tracer):
        tracer, sink = live_tracer
        assert get_tracer() is tracer
        previous = set_tracer(None)
        assert previous is tracer
        assert get_tracer() is NOOP_TRACER
        set_tracer(tracer)  # the fixture's teardown expects it back

    def test_traced_decorator_uses_active_tracer(self, live_tracer):
        _, sink = live_tracer

        @traced("custom.name", flavor="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (span,) = sink.spans()
        assert span.name == "custom.name"
        assert span.attributes == {"flavor": "test"}
