"""Tests for repro.telemetry.metrics: instruments, snapshot, merge."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_increments_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_gauge_is_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_places_observations_in_fixed_buckets(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.buckets == DEFAULT_BUCKETS
        histogram.observe(0.0005)  # <= 0.001 -> first bucket
        histogram.observe(0.003)  # <= 0.005 -> third bucket
        histogram.observe(99.0)  # > 10.0  -> overflow slot
        snap = histogram.snapshot()
        assert snap["counts"][0] == 1
        assert snap["counts"][2] == 1
        assert snap["counts"][-1] == 1
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.0005 + 0.003 + 99.0)
        assert histogram.mean == pytest.approx(snap["sum"] / 3)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))

    def test_labels_render_sorted_into_the_key(self):
        registry = MetricsRegistry()
        registry.counter("calls", provider="pool", slice="a").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"calls{provider=pool,slice=a}": 1}
        # Label order in the call does not matter: same instrument.
        assert (
            registry.counter("calls", slice="a", provider="pool").value == 1
        )


class TestSnapshotAndMerge:
    def test_snapshot_shape_is_json_compatible_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.2)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_and_histograms_gauges_overwrite(self):
        worker = MetricsRegistry()
        worker.counter("jobs").inc(3)
        worker.gauge("depth").set(9)
        worker.histogram("lat").observe(0.01)

        parent = MetricsRegistry()
        parent.counter("jobs").inc(1)
        parent.gauge("depth").set(2)
        parent.histogram("lat").observe(0.02)
        parent.merge(worker.snapshot())

        snapshot = parent.snapshot()
        assert snapshot["counters"]["jobs"] == 4
        assert snapshot["gauges"]["depth"] == 9.0
        assert snapshot["histograms"]["lat"]["count"] == 2

    def test_merge_refuses_mismatched_bucket_shapes(self):
        incoming = MetricsRegistry()
        incoming.histogram("lat", buckets=(0.5, 1.0)).observe(0.7)
        parent = MetricsRegistry()
        parent.histogram("lat").observe(0.01)
        with pytest.raises(ValueError, match="bucket boundaries differ"):
            parent.merge(incoming.snapshot())

    def test_merge_snapshots_is_pure_and_associative_for_counters(self):
        registries = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(amount)
            registries.append(registry.snapshot())
        merged = merge_snapshots(*registries)
        assert merged["counters"]["n"] == 6
        # The inputs were not mutated.
        assert [s["counters"]["n"] for s in registries] == [1, 2, 3]

    def test_reset_drops_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered")

        def hammer() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
