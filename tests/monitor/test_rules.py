"""Tests for repro.monitor.rules (the declarative SLO rule registry)."""

from __future__ import annotations

import pytest

from repro.monitor import (
    AlertRule,
    available_rules,
    campaign_rules,
    get_rule,
    is_rule,
    register_rule,
    rule_descriptions,
    service_rules,
    unregister_rule,
)
from repro.utils.exceptions import ConfigurationError


def make_rule(name="custom_rule", **overrides) -> AlertRule:
    fields = dict(
        name=name,
        component="engine",
        scope="campaign",
        signal="failover_rate",
        predicate="gt",
        threshold=0.5,
        window=3,
        min_samples=2,
        severity="degraded",
        debounce=1,
        description="a test rule",
    )
    fields.update(overrides)
    return AlertRule(**fields)


class TestAlertRule:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(component="nope"),
            dict(scope="nope"),
            dict(predicate="ge"),
            dict(severity="fatal"),
            dict(window=0),
            dict(min_samples=0),
            dict(min_samples=4),  # > window
            dict(debounce=-1),
        ],
    )
    def test_validation_rejects_bad_fields(self, overrides):
        with pytest.raises(ConfigurationError):
            make_rule(**overrides)

    def test_breaches_is_strict(self):
        gt = make_rule(predicate="gt", threshold=0.5)
        assert gt.breaches(0.51) and not gt.breaches(0.5)
        lt = make_rule(predicate="lt", threshold=0.5)
        assert lt.breaches(0.49) and not lt.breaches(0.5)

    def test_to_dict_round_trips_every_field(self):
        rule = make_rule()
        assert AlertRule(**rule.to_dict()) == rule


class TestRegistry:
    def teardown_method(self):
        unregister_rule("custom_rule")

    def test_register_get_unregister(self):
        register_rule(make_rule())
        assert is_rule("custom_rule")
        assert is_rule("  CUSTOM_RULE  ")  # case/space-insensitive
        assert get_rule("custom_rule").threshold == 0.5
        unregister_rule("custom_rule")
        assert not is_rule("custom_rule")

    def test_duplicate_registration_is_guarded(self):
        register_rule(make_rule())
        with pytest.raises(ConfigurationError):
            register_rule(make_rule(threshold=0.9))
        replaced = register_rule(make_rule(threshold=0.9), overwrite=True)
        assert replaced.threshold == 0.9

    def test_unknown_rule_raises_with_candidates(self):
        with pytest.raises(ConfigurationError, match="provider_failover"):
            get_rule("nope")


class TestBuiltins:
    def test_builtin_rule_set(self):
        assert available_rules() == (
            "cache_hit_collapse",
            "fulfillment_shortfall",
            "lane_starvation",
            "provider_failover",
            "span_error_rate",
        )

    def test_scope_split(self):
        assert tuple(r.name for r in campaign_rules()) == (
            "fulfillment_shortfall", "provider_failover", "span_error_rate",
        )
        assert tuple(r.name for r in service_rules()) == (
            "cache_hit_collapse", "lane_starvation",
        )

    def test_every_builtin_has_a_description(self):
        for name, description in rule_descriptions().items():
            assert description, name
