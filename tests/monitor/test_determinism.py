"""Monitoring must not perturb results, and alerts must be deterministic.

The contract under test:

* a monitored campaign's ``TuningResult`` is byte-identical to the same
  spec run with ``monitor=False`` — on the serial *and* the process-pool
  executor;
* the durable alert sequence of a flaky campaign is identical across
  store backends (in-memory vs sqlite) and executors, and replaying the
  stored event log through a fresh :class:`CampaignMonitor` reproduces it
  exactly;
* a crash-resume run re-appends the same alerts under a newer generation,
  collapsing to the uninterrupted history.
"""

from __future__ import annotations

from repro.campaigns import (
    Campaign,
    CampaignSpec,
    InMemoryStore,
    SqliteStore,
    replay_events,
)
from repro.engine.executor import get_executor
from repro.monitor import CampaignMonitor

#: A campaign whose flaky source trips the acquisition rules and then
#: recovers — small enough to run four times in this module.
FLAKY = dict(
    dataset="adult_like",
    scenario="flaky_source",
    method="moderate",
    budget=300.0,
    seed=0,
    base_size=60,
    validation_size=50,
    epochs=8,
    curve_points=3,
)


def flaky_spec(name="flaky", **overrides) -> CampaignSpec:
    return CampaignSpec(name=name, **{**FLAKY, **overrides})


def alert_payloads(store, campaign_id):
    """The collapsed alert payload sequence, in seq order."""
    return [
        event.payload
        for event in replay_events(store.events(campaign_id))
        if event.kind == "alert"
    ]


def run(spec, store=None, executor=None):
    store = store if store is not None else InMemoryStore()
    campaign = Campaign.start(store, spec, executor=executor)
    result = campaign.run()
    return store, campaign.campaign_id, result


class TestMonitoringIsInert:
    def test_monitored_equals_unmonitored_serial(self):
        _, _, monitored = run(flaky_spec())
        store, campaign_id, plain = run(flaky_spec(monitor=False))
        assert monitored.to_dict() == plain.to_dict()
        assert alert_payloads(store, campaign_id) == []

    def test_monitored_equals_unmonitored_process_pool(self):
        executor = get_executor("process", max_workers=2)
        try:
            _, _, monitored = run(flaky_spec(), executor=executor)
            _, _, plain = run(flaky_spec(monitor=False), executor=executor)
        finally:
            executor.close()
        assert monitored.to_dict() == plain.to_dict()

    def test_monitor_flag_is_not_identity(self):
        assert (
            flaky_spec().fingerprint()
            == flaky_spec(monitor=False).fingerprint()
        )


class TestAlertDeterminism:
    def test_flaky_campaign_fires_and_recovers(self):
        store, campaign_id, _ = run(flaky_spec())
        payloads = alert_payloads(store, campaign_id)
        transitions = [(p["rule"], p["state"]) for p in payloads]
        assert ("fulfillment_shortfall", "fired") in transitions
        assert ("provider_failover", "fired") in transitions
        # Every fired rule resolves by campaign completion.
        open_rules = set()
        for payload in payloads:
            if payload["state"] == "fired":
                open_rules.add(payload["rule"])
            else:
                open_rules.discard(payload["rule"])
        assert open_rules == set()

    def test_identical_across_stores_and_executors(self, tmp_path):
        reference_store, reference_id, reference = run(flaky_spec())
        expected = alert_payloads(reference_store, reference_id)
        assert expected, "the flaky spec must produce alerts"

        sqlite_store = SqliteStore(str(tmp_path / "flaky.sqlite"))
        store, campaign_id, result = run(flaky_spec(), store=sqlite_store)
        assert alert_payloads(store, campaign_id) == expected
        assert result.to_dict() == reference.to_dict()
        sqlite_store.close()

        executor = get_executor("process", max_workers=2)
        try:
            store, campaign_id, result = run(flaky_spec(), executor=executor)
        finally:
            executor.close()
        assert alert_payloads(store, campaign_id) == expected
        assert result.to_dict() == reference.to_dict()

    def test_replaying_the_log_reproduces_the_alerts(self):
        store, campaign_id, _ = run(flaky_spec())
        expected = alert_payloads(store, campaign_id)
        monitor = CampaignMonitor(campaign_id)
        replayed = monitor.fold(replay_events(store.events(campaign_id)))
        replayed += monitor.finalize()
        assert [a.to_dict() for a in replayed] == expected

    def test_pause_resume_collapses_to_the_same_history(self, tmp_path):
        baseline_store, baseline_id, baseline = run(flaky_spec())
        expected = alert_payloads(baseline_store, baseline_id)

        store = SqliteStore(str(tmp_path / "resumed.sqlite"))
        spec = flaky_spec(checkpoint_every=2)
        campaign = Campaign.start(store, spec)
        campaign.run(max_steps=3)
        campaign.pause()

        resumed = Campaign.resume(store, campaign.campaign_id)
        result = resumed.run()
        assert result.to_dict() == baseline.to_dict()
        assert alert_payloads(store, campaign.campaign_id) == expected
        # The raw (uncollapsed) log shows the resumed generation at work.
        generations = {
            e.generation
            for e in store.events(campaign.campaign_id)
            if e.kind == "alert"
        }
        assert len(generations) >= 1
        store.close()
