"""Tests for repro.monitor.regression (benchmark watchdog)."""

from __future__ import annotations

import json

import pytest

from repro.monitor import compare_numbers, load_benchmarks, watchdog
from repro.utils.exceptions import ConfigurationError


def write_reference(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


class TestLoadBenchmarks:
    def test_scans_bench_prefixed_files(self, tmp_path):
        write_reference(tmp_path, "alpha", {"x_s": 1.0})
        write_reference(tmp_path, "Beta", {"y_pct": 2.0})
        (tmp_path / "notes.json").write_text("{}")  # ignored: no prefix
        refs = load_benchmarks(tmp_path)
        assert sorted(refs) == ["alpha", "beta"]
        assert refs["alpha"] == {"x_s": 1.0}

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_benchmarks(tmp_path / "nope")

    def test_unreadable_reference_raises(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(ConfigurationError, match="BENCH_bad"):
            load_benchmarks(tmp_path)


class TestCompareNumbers:
    def test_timing_metrics_get_relative_headroom(self):
        ref = {"run_s": 1.0}
        assert compare_numbers("b", ref, {"run_s": 1.2}) == []
        regs = compare_numbers("b", ref, {"run_s": 1.3})
        assert [(r.metric, r.severity) for r in regs] == [("run_s", "degraded")]
        # Faster is never a regression.
        assert compare_numbers("b", ref, {"run_s": 0.1}) == []

    def test_pct_metrics_get_absolute_headroom(self):
        ref = {"overhead_pct": -2.0}
        assert compare_numbers("b", ref, {"overhead_pct": 7.9}) == []
        regs = compare_numbers("b", ref, {"overhead_pct": 8.1})
        assert [r.metric for r in regs] == ["overhead_pct"]
        assert regs[0].limit == pytest.approx(8.0)

    def test_boolean_invariants_are_critical(self):
        ref = {"byte_identical": True}
        assert compare_numbers("b", ref, {"byte_identical": True}) == []
        regs = compare_numbers("b", ref, {"byte_identical": False})
        assert [r.severity for r in regs] == ["critical"]
        # A reference False coming back True is an improvement, not a
        # regression.
        assert compare_numbers("b", {"flag": False}, {"flag": True}) == []

    def test_missing_and_informational_metrics_are_skipped(self):
        ref = {"gone_s": 1.0, "names": ["a"], "count": 3}
        fresh = {"names": ["b"], "count": 99, "new_s": 5.0}
        assert compare_numbers("b", ref, fresh) == []


class TestWatchdog:
    def test_verdict_shape_and_status(self, tmp_path):
        write_reference(tmp_path, "alpha", {
            "run_s": 1.0, "byte_identical": True,
        })
        verdict = watchdog(tmp_path, {
            "alpha": {"run_s": 2.0, "byte_identical": False},
            "orphan": {"x_s": 1.0},
        })
        assert verdict["status"] == "critical"
        assert verdict["checked"] == ["alpha"]
        assert verdict["unmatched"] == ["orphan"]
        assert verdict["references"] == ["alpha"]
        metrics = {r["metric"]: r["severity"] for r in verdict["regressions"]}
        assert metrics == {"run_s": "degraded", "byte_identical": "critical"}

    def test_all_clear(self, tmp_path):
        write_reference(tmp_path, "alpha", {"run_s": 1.0})
        verdict = watchdog(tmp_path, {"alpha": {"run_s": 1.0}})
        assert verdict["status"] == "ok"
        assert verdict["regressions"] == []

    def test_committed_references_match_repo_benchmarks(self):
        # The real benchmarks/ directory stays loadable — the CI watchdog
        # depends on it.
        refs = load_benchmarks("benchmarks")
        assert "telemetry" in refs
        assert "monitor" in refs
