"""Tests for repro.monitor.windows (seq-cursored rolling windows)."""

from __future__ import annotations

import pytest

from repro.monitor import RollingWindow
from repro.utils.exceptions import ConfigurationError


class TestRollingWindow:
    def test_span_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RollingWindow(0)

    def test_empty_window(self):
        window = RollingWindow(3)
        assert len(window) == 0
        assert window.values == ()
        assert window.last_index is None
        assert window.mean() == 0.0

    def test_push_and_eviction(self):
        window = RollingWindow(3)
        for index, value in enumerate([1.0, 2.0, 3.0, 4.0]):
            window.push(index, value)
        assert window.values == (2.0, 3.0, 4.0)
        assert window.last_index == 3
        assert window.mean() == pytest.approx(3.0)

    def test_indices_must_not_decrease(self):
        window = RollingWindow(3)
        window.push(5, 1.0)
        window.push(5, 2.0)  # equal is fine (re-evaluation of one index)
        with pytest.raises(ConfigurationError):
            window.push(4, 3.0)

    def test_mean_is_insertion_order_stable(self):
        # The same samples folded twice give the identical float — the
        # property replay warm-up relies on.
        a, b = RollingWindow(5), RollingWindow(5)
        samples = [0.1, 0.7, 0.30000000000000004, 0.2, 0.9]
        for index, value in enumerate(samples):
            a.push(index, value)
            b.push(index, value)
        assert a.mean() == b.mean()

    def test_state_dict_round_trip_shape(self):
        window = RollingWindow(2)
        window.push(1, 0.5)
        window.push(2, 0.25)
        assert window.state_dict() == {
            "span": 2,
            "samples": [[1, 0.5], [2, 0.25]],
        }
        assert list(window) == [(1, 0.5), (2, 0.25)]
