"""Tests for repro.monitor.health (campaign monitor + service evaluator)."""

from __future__ import annotations

import pytest

from repro.campaigns import InMemoryStore
from repro.campaigns.store import (
    COMPLETED,
    RUNNING,
    CampaignEvent,
    CampaignRecord,
)
from repro.monitor import (
    Alert,
    CampaignMonitor,
    HealthEvaluator,
    alert_history,
    get_rule,
    worst_status,
)


def make_event(seq, kind, iteration, payload) -> CampaignEvent:
    return CampaignEvent(
        campaign_id="c-1",
        seq=seq,
        generation=0,
        iteration=iteration,
        kind=kind,
        payload=payload,
    )


def fulfillment(requested, delivered, providers=1, rounds=1, status="fulfilled"):
    return {
        "status": status,
        "effective": requested,
        "delivered": delivered,
        "shortfall": max(requested - delivered, 0),
        "rounds": rounds,
        "provenance": [f"p{i}" for i in range(providers)],
    }


def iteration_events(iteration, seq, *payloads, kind="fulfillment"):
    """One iteration's worth of events: payloads then the iteration marker."""
    events = [
        make_event(seq + i, kind, iteration, payload)
        for i, payload in enumerate(payloads)
    ]
    events.append(make_event(seq + len(payloads), "iteration", iteration, {}))
    return events


class TestWorstStatus:
    def test_ordering(self):
        assert worst_status([]) == "ok"
        assert worst_status(["ok", "degraded"]) == "degraded"
        assert worst_status(["degraded", "critical", "ok"]) == "critical"


class TestAlert:
    def test_dict_round_trip(self):
        alert = Alert(
            rule="provider_failover",
            component="acquisition",
            severity="degraded",
            state="fired",
            value=0.75,
            threshold=0.4,
            window=3,
            iteration=2,
            message="x",
        )
        assert Alert.from_dict(alert.to_dict()) == alert
        # Payloads never embed seqs/generations/timestamps.
        assert set(alert.to_dict()) == {
            "rule", "component", "severity", "state", "value",
            "threshold", "window", "iteration", "message",
        }


class TestCampaignMonitor:
    def test_fire_and_resolve_cycle(self):
        monitor = CampaignMonitor("c-1", rules=(get_rule("provider_failover"),))
        bad = fulfillment(10, 10, providers=2)  # failover happened
        good = fulfillment(10, 10)
        # min_samples=2: the first troubled iteration alone cannot fire.
        assert monitor.fold(iteration_events(1, 0, bad)) == []
        alerts = monitor.fold(iteration_events(2, 2, bad))
        assert [a.state for a in alerts] == ["fired"]
        assert alerts[0].iteration == 2
        assert alerts[0].value == pytest.approx(1.0)
        assert monitor.active == ("provider_failover",)
        # Recovery: enough clean iterations pull the window mean under 0.4.
        assert monitor.fold(iteration_events(3, 4, good)) == []
        resolved = monitor.fold(iteration_events(4, 6, good))
        assert [a.state for a in resolved] == ["resolved"]
        assert monitor.active == ()

    def test_debounce_suppresses_flapping(self):
        # A window-1 rule flips with every sample; debounce=2 must swallow
        # the breach that lands right after a resolve.
        from repro.monitor import AlertRule

        flappy = AlertRule(
            name="flappy",
            component="acquisition",
            scope="campaign",
            signal="failover_rate",
            predicate="gt",
            threshold=0.5,
            window=1,
            min_samples=1,
            severity="degraded",
            debounce=2,
        )
        monitor = CampaignMonitor("c-1", rules=(flappy,))
        bad, good = fulfillment(10, 10, rounds=2), fulfillment(10, 10)
        states = []
        # bad -> fired@1; good -> resolved@2; bad@3 is within debounce
        # (3 - 2 < 2) and is suppressed; bad@4 re-fires.
        for iteration, payload in enumerate([bad, good, bad, bad], start=1):
            alerts = monitor.fold(
                iteration_events(iteration, iteration * 2, payload)
            )
            states.extend((a.state, a.iteration) for a in alerts)
        assert states == [("fired", 1), ("resolved", 2), ("fired", 4)]

    def test_skipped_fulfillments_are_benign(self):
        monitor = CampaignMonitor("c-1", rules=(get_rule("provider_failover"),))
        skipped = fulfillment(0, 0, status="skipped")
        for iteration in range(1, 4):
            assert monitor.fold(
                iteration_events(iteration, iteration * 2, skipped)
            ) == []

    def test_shortfall_rate_is_ratio_of_payload_integers(self):
        monitor = CampaignMonitor(
            "c-1", rules=(get_rule("fulfillment_shortfall"),)
        )
        short = fulfillment(100, 40, status="partial")
        monitor.fold(iteration_events(1, 0, short))
        alerts = monitor.fold(iteration_events(2, 2, short))
        assert [a.state for a in alerts] == ["fired"]
        assert alerts[0].value == pytest.approx(0.6)

    def test_span_error_rate_from_telemetry_events(self):
        monitor = CampaignMonitor("c-1", rules=(get_rule("span_error_rate"),))
        bad_span = {"name": "engine.submit", "status": "error"}
        alerts = monitor.fold(
            iteration_events(1, 0, bad_span, kind="telemetry")
        )
        assert [a.state for a in alerts] == ["fired"]  # min_samples=1

    def test_finalize_resolves_active_alerts_at_minus_one(self):
        monitor = CampaignMonitor("c-1", rules=(get_rule("provider_failover"),))
        bad = fulfillment(10, 10, providers=3)
        monitor.fold(iteration_events(1, 0, bad))
        monitor.fold(iteration_events(2, 2, bad))
        final = monitor.finalize()
        assert [(a.state, a.iteration) for a in final] == [("resolved", -1)]
        assert monitor.finalize() == []  # idempotent

    def test_fold_skips_alert_events(self):
        # Folding a log that already contains alert events (a replay)
        # must not double-count them as input signals.
        monitor = CampaignMonitor("c-1", rules=(get_rule("provider_failover"),))
        bad = fulfillment(10, 10, providers=2)
        events = iteration_events(1, 0, bad)
        events.append(make_event(9, "alert", 1, {"rule": "provider_failover"}))
        events.extend(iteration_events(2, 10, bad))
        alerts = monitor.fold(events)
        assert [a.state for a in alerts] == ["fired"]

    def test_warmup_reproduces_live_state(self):
        bad, good = fulfillment(10, 10, rounds=3), fulfillment(10, 10)
        script = [(1, bad), (2, bad), (3, good), (4, good), (5, bad)]
        events = []
        seq = 0
        for iteration, payload in script:
            events.extend(iteration_events(iteration, seq, payload))
            seq += 2

        live = CampaignMonitor("c-1")
        live_alerts = [a for a in live.fold(events)]

        warmed = CampaignMonitor("c-1")
        warmed.warmup(events[:6], up_to_iteration=3)  # through iteration 3
        resumed_alerts = warmed.fold(events[6:])
        # The warmed monitor replays the tail into the same transitions the
        # live monitor saw for those iterations.
        assert [a.to_dict() for a in resumed_alerts] == [
            a.to_dict() for a in live_alerts if a.iteration > 3
        ]
        assert warmed.active == live.active


def snapshot(**counters):
    return {"counters": counters}


class TestHealthEvaluator:
    def test_cache_collapse_requires_prior_hits(self):
        evaluator = HealthEvaluator()
        # A run that never hits the cache is all misses — legitimately so.
        for step in range(1, 8):
            alerts = evaluator.observe(
                snapshot(**{"engine.cache_misses": step * 10})
            )
            assert alerts == []
        assert evaluator.health()["components"]["cache"]["status"] == "ok"

    def test_cache_collapse_fires_and_recovers(self):
        evaluator = HealthEvaluator()
        # Warm phase: the cache serves hits.
        hits, misses = 0, 0
        for _ in range(3):
            hits += 9
            misses += 1
            evaluator.observe(
                snapshot(**{
                    "engine.cache_hits": hits,
                    "engine.cache_misses": misses,
                })
            )
        # Collapse: only misses from here on.
        fired = []
        for _ in range(5):
            misses += 10
            fired += evaluator.observe(
                snapshot(**{
                    "engine.cache_hits": hits,
                    "engine.cache_misses": misses,
                })
            )
        assert [a.rule for a in fired] == ["cache_hit_collapse"]
        verdict = evaluator.health()
        assert verdict["components"]["cache"]["status"] == "degraded"
        assert verdict["status"] == "degraded"
        # Recovery: hits resume and the window mean climbs back over 10%.
        resolved = []
        for _ in range(6):
            hits += 10
            resolved += evaluator.observe(
                snapshot(**{
                    "engine.cache_hits": hits,
                    "engine.cache_misses": misses,
                })
            )
        assert [a.state for a in resolved] == ["resolved"]
        assert evaluator.health()["status"] == "ok"

    def test_lane_starvation_needs_lanes_and_history(self):
        evaluator = HealthEvaluator()
        # One lane only: no sample, whatever the step count.
        evaluator.observe(snapshot(**{"scheduler.lane_steps{lane=0}": 100}))
        # Two lanes but under the minimum history: still no sample.
        evaluator.observe(snapshot(**{
            "scheduler.lane_steps{lane=0}": 10,
            "scheduler.lane_steps{lane=1}": 5,
        }))
        assert evaluator.health()["components"]["scheduler"]["status"] == "ok"
        # A starved lane across enough snapshots fires.
        fired = []
        for step in range(3, 9):
            fired += evaluator.observe(snapshot(**{
                "scheduler.lane_steps{lane=0}": step * 40,
                "scheduler.lane_steps{lane=1}": 1,
            }))
        assert [a.rule for a in fired] == ["lane_starvation"]

    def test_health_folds_store_and_serve_state(self):
        store = InMemoryStore()
        store.create_campaign(CampaignRecord(
            campaign_id="c-1", name="c", fingerprint="f1", spec={},
            status=RUNNING,
        ))
        store.append_event(
            "c-1", generation=0, kind="alert", iteration=2, payload={
                "rule": "fulfillment_shortfall",
                "component": "acquisition",
                "severity": "critical",
                "state": "fired",
                "value": 0.6,
                "threshold": 0.2,
                "window": 3,
                "iteration": 2,
                "message": "m",
            },
        )
        evaluator = HealthEvaluator()
        verdict = evaluator.health(store=store)
        assert verdict["components"]["acquisition"]["status"] == "critical"
        assert verdict["status"] == "critical"
        # Terminal campaigns drop out of the live verdict.
        store.set_status("c-1", COMPLETED)
        assert evaluator.health(store=store)["status"] == "ok"
        # The daemon's own flags land on the serve component.
        draining = evaluator.health(
            store=store, serve_state={"draining": True}
        )
        assert draining["components"]["serve"]["status"] == "degraded"
        broken = evaluator.health(
            store=store, serve_state={"pump_error": "boom"}
        )
        assert broken["components"]["serve"]["status"] == "critical"
        assert broken["status"] == "critical"


class TestAlertHistory:
    def test_rows_annotate_payloads_with_seq_and_generation(self):
        store = InMemoryStore()
        store.create_campaign(CampaignRecord(
            campaign_id="c-1", name="c", fingerprint="f1", spec={},
        ))
        payload = {"rule": "provider_failover", "state": "fired"}
        store.append_event("c-1", generation=0, kind="alert", iteration=1, payload=payload)
        store.append_event("c-1", generation=0, kind="iteration", iteration=1, payload={})
        rows = alert_history(store)
        assert len(rows) == 1
        assert rows[0]["campaign_id"] == "c-1"
        assert rows[0]["rule"] == "provider_failover"
        assert rows[0]["seq"] == 1
        assert rows[0]["generation"] == 0
        assert alert_history(store, "c-1") == rows
        assert alert_history(store, "other") == []
