"""CLI surface of the monitoring subsystem (``monitor ...``, quantiles).

The CLI must agree with the library: ``monitor alerts`` prints exactly the
rows :func:`repro.monitor.alert_history` replays, ``report alerts``
verifies SQL against the Python reference, and ``telemetry metrics``
derives the same quantile estimates :func:`histogram_quantiles` does.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import Campaign, SqliteStore
from repro.cli import main
from repro.monitor import alert_history
from tests.monitor.test_determinism import flaky_spec


@pytest.fixture(scope="module")
def flaky_store(tmp_path_factory):
    """One completed flaky campaign in a sqlite store (module-shared)."""
    path = str(tmp_path_factory.mktemp("clistore") / "flaky.sqlite")
    store = SqliteStore(path)
    campaign = Campaign.start(store, flaky_spec(name="cli-flaky"))
    campaign.run()
    rows = alert_history(store)
    store.close()
    return path, campaign.campaign_id, rows


class TestMonitorRules:
    def test_table_lists_builtins(self, capsys):
        assert main(["monitor", "rules"]) == 0
        output = capsys.readouterr().out
        for name in ("provider_failover", "fulfillment_shortfall",
                     "cache_hit_collapse", "lane_starvation",
                     "span_error_rate"):
            assert name in output

    def test_json_is_schema_tagged(self, capsys):
        assert main(["monitor", "rules", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.monitor/1"
        assert payload["count"] == len(payload["rules"]) == 5


class TestMonitorAlerts:
    def test_rows_match_alert_history(self, capsys, flaky_store):
        path, campaign_id, rows = flaky_store
        assert main(["monitor", "alerts", "--store", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.monitor/1"
        assert payload["count"] == len(rows) > 0
        assert payload["alerts"] == json.loads(json.dumps(rows))

    def test_campaign_filter_and_unknown_id(self, capsys, flaky_store):
        path, campaign_id, rows = flaky_store
        assert main([
            "monitor", "alerts", "--store", path,
            "--campaign", campaign_id, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(rows)
        assert main([
            "monitor", "alerts", "--store", path, "--campaign", "ghost",
        ]) == 2

    def test_quiet_counts_fired(self, capsys, flaky_store):
        path, _, rows = flaky_store
        assert main(["monitor", "alerts", "--store", path, "--quiet"]) == 0
        fired = sum(1 for row in rows if row["state"] == "fired")
        line = capsys.readouterr().out.strip()
        assert line == f"{len(rows)} alert row(s) ({fired} fired) in {path}"

    def test_missing_store_exits_2(self, capsys, tmp_path):
        assert main([
            "monitor", "alerts", "--store", str(tmp_path / "none.sqlite"),
        ]) == 2


class TestMonitorStatus:
    def test_completed_campaigns_are_healthy(self, capsys, flaky_store):
        path, _, _ = flaky_store
        assert main(["monitor", "status", "--store", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["status"] == "ok"
        assert sorted(payload["health"]["components"]) == [
            "acquisition", "cache", "engine", "scheduler", "serve",
        ]

    def test_quiet_line(self, capsys, flaky_store):
        path, _, _ = flaky_store
        assert main(["monitor", "status", "--store", path, "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == f"ok — {path}"


class TestMonitorBench:
    def test_clean_run_exits_0(self, capsys, tmp_path):
        ref_dir = tmp_path / "refs"
        ref_dir.mkdir()
        (ref_dir / "BENCH_demo.json").write_text(
            json.dumps({"run_s": 1.0, "byte_identical": True})
        )
        fresh = tmp_path / "fresh.json"
        fresh.write_text(
            json.dumps({"demo": {"run_s": 0.9, "byte_identical": True}})
        )
        assert main([
            "monitor", "bench", "--fresh", str(fresh),
            "--reference-dir", str(ref_dir), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["checked"] == ["demo"]

    def test_regression_exits_2_after_reporting(self, capsys, tmp_path):
        ref_dir = tmp_path / "refs"
        ref_dir.mkdir()
        (ref_dir / "BENCH_demo.json").write_text(
            json.dumps({"byte_identical": True})
        )
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"demo": {"byte_identical": False}}))
        assert main([
            "monitor", "bench", "--fresh", str(fresh),
            "--reference-dir", str(ref_dir), "--json",
        ]) == 2
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["status"] == "critical"
        assert "regression" in captured.err

    def test_unknown_benchmark_filter_exits_2(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps({"demo": {}}))
        assert main([
            "monitor", "bench", "--fresh", str(fresh),
            "--benchmark", "nope", "--reference-dir", "benchmarks",
        ]) == 2


class TestReportAlerts:
    def test_report_alerts_verifies_sql_against_python(self, capsys, flaky_store):
        path, _, rows = flaky_store
        assert main([
            "report", "alerts", "--store", path, "--verify", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        section = payload["sections"]["alert_history"]
        assert len(section["rows"]) == len(rows)
        assert "alert_history" in payload["verified"]


class TestTelemetryQuantiles:
    @pytest.fixture()
    def trace_dir(self, tmp_path):
        path = str(tmp_path / "trace")
        assert main([
            "campaign", "start", "--store", str(tmp_path / "t.sqlite"),
            "--name", "traced", "--dataset", "adult_like",
            "--scenario", "flaky_source", "--method", "moderate",
            "--budget", "300", "--seed", "0", "--initial-size", "60",
            "--validation-size", "50", "--epochs", "8",
            "--curve-points", "3", "--quiet", "--trace-out", path,
        ]) == 0
        return path

    def test_metrics_json_carries_quantiles(self, capsys, trace_dir):
        capsys.readouterr()
        assert main([
            "telemetry", "metrics", "--trace-dir", trace_dir, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["quantiles"], "flaky source records provider timings"
        for estimates in payload["quantiles"].values():
            assert set(estimates) == {"p50", "p95", "p99"}
            values = [v for v in estimates.values() if v is not None]
            assert values == sorted(values)

    def test_quantiles_match_library_function(self, capsys, trace_dir):
        from repro.telemetry import histogram_quantiles

        capsys.readouterr()
        assert main([
            "telemetry", "metrics", "--trace-dir", trace_dir, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        for name, data in payload["metrics"]["histograms"].items():
            assert payload["quantiles"][name] == histogram_quantiles(data)

    def test_summary_renders_quantile_table(self, capsys, trace_dir):
        capsys.readouterr()
        assert main(["telemetry", "summary", "--trace-dir", trace_dir]) == 0
        output = capsys.readouterr().out
        assert "Latency quantiles" in output
        assert "p95 s" in output
