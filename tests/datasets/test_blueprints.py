"""Tests for repro.datasets.blueprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.blueprints import (
    SliceBlueprint,
    SyntheticTask,
    circle_centers,
    exponential_initial_sizes,
    orthogonal_centers,
)
from repro.utils.exceptions import ConfigurationError


def simple_blueprint(name="a", label=0, **kwargs) -> SliceBlueprint:
    defaults = dict(
        centers=np.zeros((1, 4)),
        cluster_labels=(label,),
        noise=1.0,
        label_noise=0.0,
        cost=1.0,
    )
    defaults.update(kwargs)
    return SliceBlueprint(name=name, **defaults)


class TestSliceBlueprint:
    def test_center_label_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SliceBlueprint(
                name="a", centers=np.zeros((2, 3)), cluster_labels=(0,), noise=1.0
            )

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_blueprint(noise=0.0)

    def test_invalid_label_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_blueprint(label_noise=1.5)

    def test_cluster_weights_validation(self):
        with pytest.raises(ConfigurationError):
            SliceBlueprint(
                name="a",
                centers=np.zeros((2, 3)),
                cluster_labels=(0, 1),
                cluster_weights=(1.0,),
            )

    def test_n_features(self):
        assert simple_blueprint().n_features == 4


class TestSyntheticTask:
    def make_task(self) -> SyntheticTask:
        blueprints = [simple_blueprint("a", 0), simple_blueprint("b", 1)]
        return SyntheticTask("toy", blueprints, n_classes=2)

    def test_slice_names_and_costs(self):
        task = self.make_task()
        assert task.slice_names == ["a", "b"]
        assert task.costs() == {"a": 1.0, "b": 1.0}

    def test_duplicate_slice_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTask("bad", [simple_blueprint("a"), simple_blueprint("a")], 2)

    def test_n_classes_must_cover_labels(self):
        with pytest.raises(ConfigurationError):
            SyntheticTask("bad", [simple_blueprint("a", label=3)], n_classes=2)

    def test_generate_count_and_labels(self):
        task = self.make_task()
        data = task.generate("b", 25, random_state=0)
        assert len(data) == 25
        assert set(data.labels.tolist()) == {1}

    def test_generate_zero_or_negative(self):
        task = self.make_task()
        assert len(task.generate("a", 0)) == 0
        assert len(task.generate("a", -5)) == 0

    def test_generate_unknown_slice_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_task().generate("missing", 5)

    def test_generate_is_deterministic_given_seed(self):
        task = self.make_task()
        a = task.generate("a", 10, random_state=3)
        b = task.generate("a", 10, random_state=3)
        assert np.array_equal(a.features, b.features)

    def test_label_noise_flips_labels(self):
        blueprint = simple_blueprint("noisy", 0, label_noise=0.5)
        task = SyntheticTask("noisy", [blueprint, simple_blueprint("b", 1)], 2)
        data = task.generate("noisy", 400, random_state=0)
        flipped = np.mean(data.labels != 0)
        assert 0.35 < flipped < 0.65

    def test_cluster_weights_respected(self):
        blueprint = SliceBlueprint(
            name="w",
            centers=np.zeros((2, 3)),
            cluster_labels=(0, 1),
            noise=1.0,
            label_noise=0.0,
            cluster_weights=(0.9, 0.1),
        )
        task = SyntheticTask("weighted", [blueprint], n_classes=2)
        data = task.generate("w", 500, random_state=0)
        positive_rate = np.mean(data.labels == 1)
        assert 0.05 < positive_rate < 0.2

    def test_initial_sliced_dataset_sizes(self):
        task = self.make_task()
        sliced = task.initial_sliced_dataset(
            {"a": 10, "b": 20}, validation_size=15, random_state=0
        )
        assert sliced.sizes().tolist() == [10, 20]
        assert len(sliced["a"].validation) == 15

    def test_initial_sizes_scalar_and_sequence(self):
        task = self.make_task()
        assert task.initial_sliced_dataset(12, 5, 0).sizes().tolist() == [12, 12]
        assert task.initial_sliced_dataset([5, 6], 5, 0).sizes().tolist() == [5, 6]

    def test_initial_sizes_missing_slice_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_task().initial_sliced_dataset({"a": 10}, 5, 0)

    def test_initial_sizes_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_task().initial_sliced_dataset([1, 2, 3], 5, 0)


class TestCenterHelpers:
    def test_circle_centers_radius(self):
        centers = circle_centers(4, 6, radius=2.0)
        assert centers.shape == (4, 6)
        assert np.allclose(np.linalg.norm(centers, axis=1), 2.0)

    def test_orthogonal_centers_equidistant(self):
        centers = orthogonal_centers(5, 8, radius=3.0)
        distances = [
            np.linalg.norm(centers[i] - centers[j])
            for i in range(5)
            for j in range(i + 1, 5)
        ]
        assert np.allclose(distances, 3.0 * np.sqrt(2))

    def test_orthogonal_centers_offset(self):
        centers = orthogonal_centers(2, 6, radius=1.0, offset=3)
        assert centers[0, 3] == 1.0 and centers[1, 4] == 1.0

    def test_orthogonal_centers_too_few_features_rejected(self):
        with pytest.raises(ConfigurationError):
            orthogonal_centers(5, 4, radius=1.0)

    def test_circle_centers_too_few_features_rejected(self):
        with pytest.raises(ConfigurationError):
            circle_centers(3, 1, radius=1.0)


class TestExponentialInitialSizes:
    def test_monotonically_non_increasing(self):
        sizes = exponential_initial_sizes(["a", "b", "c", "d"], largest=400, decay=0.8)
        values = list(sizes.values())
        assert values == sorted(values, reverse=True)
        assert values[0] == 400

    def test_minimum_enforced(self):
        sizes = exponential_initial_sizes(
            [f"s{i}" for i in range(20)], largest=100, decay=0.5, minimum=30
        )
        assert min(sizes.values()) == 30
