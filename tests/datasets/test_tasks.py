"""Tests for the four concrete synthetic tasks."""

from __future__ import annotations

import numpy as np

from repro.datasets.adult import ADULT_SLICES, adult_like_task
from repro.datasets.faces import FACE_SLICES, RACES, UTKFACE_COSTS, faces_like_task
from repro.datasets.fashion import FASHION_CLASSES, fashion_like_task
from repro.datasets.mixed import DIGIT_CLASSES, mixed_like_task


class TestFashionLikeTask:
    def test_ten_label_slices(self):
        task = fashion_like_task()
        assert task.slice_names == list(FASHION_CLASSES)
        assert task.n_classes == 10

    def test_slice_contains_only_its_label(self):
        task = fashion_like_task()
        data = task.generate("Trouser", 100, random_state=0)
        majority = np.mean(data.labels == FASHION_CLASSES.index("Trouser"))
        assert majority > 0.95  # only label noise deviates

    def test_unit_costs(self):
        assert set(fashion_like_task().costs().values()) == {1.0}

    def test_difficulty_ordering(self):
        task = fashion_like_task()
        assert task.blueprint("Shirt").noise > task.blueprint("Trouser").noise


class TestMixedLikeTask:
    def test_twenty_slices_twenty_classes(self):
        task = mixed_like_task()
        assert len(task.slice_names) == 20
        assert task.n_classes == 20
        assert set(DIGIT_CLASSES) <= set(task.slice_names)

    def test_digits_easier_than_clothing(self):
        task = mixed_like_task()
        digit_noise = np.mean([task.blueprint(n).noise for n in DIGIT_CLASSES])
        fashion_noise = np.mean([task.blueprint(n).noise for n in FASHION_CLASSES])
        assert digit_noise < fashion_noise

    def test_sources_live_on_disjoint_axes(self):
        task = mixed_like_task()
        fashion_center = task.blueprint("Shirt").centers[0]
        digit_center = task.blueprint("Digit0").centers[0]
        assert np.count_nonzero(fashion_center * digit_center) == 0


class TestFacesLikeTask:
    def test_eight_slices_four_classes(self):
        task = faces_like_task()
        assert task.slice_names == list(FACE_SLICES)
        assert task.n_classes == len(RACES)

    def test_costs_match_table1(self):
        assert faces_like_task().costs() == UTKFACE_COSTS

    def test_same_race_slices_share_label(self):
        task = faces_like_task()
        male = task.generate("White_Male", 200, random_state=0)
        female = task.generate("White_Female", 200, random_state=1)
        white = RACES.index("White")
        # Label noise flips a few labels, but the dominant label of both
        # gender slices is the shared race class.
        assert np.mean(male.labels == white) > 0.9
        assert np.mean(female.labels == white) > 0.9

    def test_same_race_slices_are_similar(self):
        """Same-race clusters are much closer than different-race clusters."""
        task = faces_like_task()
        wm = task.blueprint("White_Male").centers[0]
        wf = task.blueprint("White_Female").centers[0]
        bm = task.blueprint("Black_Male").centers[0]
        assert np.linalg.norm(wm - wf) < np.linalg.norm(wm - bm)


class TestAdultLikeTask:
    def test_four_slices_binary_labels(self):
        task = adult_like_task()
        assert task.slice_names == list(ADULT_SLICES)
        assert task.n_classes == 2

    def test_positive_rates_differ_by_slice(self):
        task = adult_like_task()
        rates = {}
        for name in ADULT_SLICES:
            data = task.generate(name, 800, random_state=0)
            rates[name] = float(np.mean(data.labels == 1))
        assert rates["White_Male"] > rates["Black_Female"]

    def test_both_classes_present_in_each_slice(self):
        task = adult_like_task()
        for name in ADULT_SLICES:
            data = task.generate(name, 300, random_state=1)
            assert set(data.labels.tolist()) == {0, 1}


class TestLearningBehaviour:
    def test_more_data_lowers_loss(self):
        """The core premise: validation loss decreases as training data grows."""
        from repro.ml.linear import SoftmaxRegression
        from repro.ml.metrics import overall_loss
        from repro.ml.train import Trainer, TrainingConfig

        task = fashion_like_task()
        config = TrainingConfig(epochs=25, batch_size=64, learning_rate=0.03)
        losses = []
        for per_slice in (40, 400):
            sliced = task.initial_sliced_dataset(per_slice, validation_size=100, random_state=0)
            model = SoftmaxRegression(n_classes=10, random_state=0)
            Trainer(config=config, random_state=1).fit(model, sliced.combined_train())
            losses.append(
                overall_loss(model, list(sliced.validation_by_slice().values()))
            )
        assert losses[1] < losses[0]
