"""Tests for repro.datasets.registry."""

from __future__ import annotations

import pytest

from repro.datasets.blueprints import SyntheticTask
from repro.datasets.registry import available_tasks, build_task, register_task
from repro.utils.exceptions import ConfigurationError


class TestRegistry:
    def test_builtin_tasks_listed(self):
        names = available_tasks()
        for expected in ("fashion_like", "mixed_like", "faces_like", "adult_like"):
            assert expected in names

    @pytest.mark.parametrize("name", ["fashion_like", "adult_like"])
    def test_build_task_returns_task(self, name):
        task = build_task(name)
        assert isinstance(task, SyntheticTask)
        assert task.name == name

    def test_build_task_passes_kwargs(self):
        task = build_task("fashion_like", n_features=32)
        assert task.n_features == 32

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown task"):
            build_task("imagenet")

    def test_register_and_build_custom_task(self, tiny_task):
        register_task("custom_tiny_for_test", lambda: tiny_task)
        try:
            assert build_task("custom_tiny_for_test") is tiny_task
        finally:
            # Keep the registry clean for other tests.
            from repro.datasets import registry

            registry._REGISTRY.pop("custom_tiny_for_test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_task("fashion_like", lambda: None)
