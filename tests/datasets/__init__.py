"""Test package."""
