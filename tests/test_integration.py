"""End-to-end integration tests across modules.

These tests wire the whole system together the way the examples and the
benchmark harness do — dataset generator -> sliced dataset -> learning-curve
estimation -> optimization -> acquisition -> evaluation — on small instances,
and assert the paper's qualitative claims on the shapes of the results.
"""

from __future__ import annotations

from repro import (
    CrowdsourcingSimulator,
    CurveEstimationConfig,
    GeneratorDataSource,
    SliceTuner,
    SliceTunerConfig,
    TableCost,
    TrainingConfig,
    WorkerPool,
)
from repro.datasets.faces import UTKFACE_COSTS, UTKFACE_TASK_SECONDS, faces_like_task


def make_tuner(task, sliced, source, lam=1.0, seed=0, trials=1):
    return SliceTuner(
        sliced,
        source,
        trainer_config=TrainingConfig(epochs=20, batch_size=32, learning_rate=0.05),
        # Two repeats: single-repeat curves on the 15-example starved slice
        # are too noisy to allocate sensibly on some RNG streams.
        curve_config=CurveEstimationConfig(n_points=4, n_repeats=2, min_fraction=0.3),
        config=SliceTunerConfig(lam=lam, evaluation_trials=trials),
        random_state=seed,
    )


class TestEndToEndTinyTask:
    def test_moderate_improves_fairness_over_original(self, tiny_task):
        # slice_2 is the hardest slice of the tiny task and starts starved,
        # so the initial model is both lossy and unfair on it — the setting
        # the paper's Table 2 captures.  Moderate acquisition should improve
        # both metrics.
        sliced = tiny_task.initial_sliced_dataset(
            {"slice_0": 60, "slice_1": 60, "slice_2": 15}, 80, random_state=0
        )
        source = GeneratorDataSource(tiny_task, random_state=1)
        tuner = make_tuner(tiny_task, sliced, source, trials=2)
        result = tuner.run(budget=200, method="moderate")
        assert result.final_report.avg_eer <= result.initial_report.avg_eer + 0.02
        assert result.final_report.loss <= result.initial_report.loss + 0.02

    def test_slice_tuner_targets_starved_hard_slice(self, tiny_task):
        # slice_2 has the largest noise (hardest) and starts smallest, so a
        # sensible allocation gives it at least an average share.
        sliced = tiny_task.initial_sliced_dataset(
            {"slice_0": 80, "slice_1": 80, "slice_2": 15}, 80, random_state=0
        )
        source = GeneratorDataSource(tiny_task, random_state=1)
        tuner = make_tuner(tiny_task, sliced, source)
        result = tuner.run(budget=150, method="moderate", evaluate=False)
        total = sum(result.total_acquired.values())
        assert result.total_acquired["slice_2"] >= total / len(sliced.names) * 0.8

    def test_oneshot_vs_iterative_budget_accounting(self, tiny_task):
        for method in ("oneshot", "aggressive"):
            sliced = tiny_task.initial_sliced_dataset(30, 60, random_state=0)
            source = GeneratorDataSource(tiny_task, random_state=1)
            tuner = make_tuner(tiny_task, sliced, source)
            result = tuner.run(budget=120, method=method, evaluate=False)
            assert result.spent <= 120 + 1e-6
            assert result.spent >= 120 - 2 * max(sliced.costs())


class TestEndToEndCrowdsourcing:
    def test_crowdsourced_acquisition_pipeline(self):
        task = faces_like_task()
        sliced = task.initial_sliced_dataset(60, 60, random_state=0)
        crowd = CrowdsourcingSimulator(
            source=GeneratorDataSource(task, random_state=1),
            task_seconds=UTKFACE_TASK_SECONDS,
            workers=WorkerPool(mistake_rate=0.1, duplicate_rate=0.05),
            random_state=2,
        )
        tuner = SliceTuner(
            sliced,
            crowd,
            trainer_config=TrainingConfig(epochs=15, batch_size=32, learning_rate=0.05),
            curve_config=CurveEstimationConfig(n_points=3, n_repeats=1, min_fraction=0.3),
            cost_model=TableCost(UTKFACE_COSTS),
            config=SliceTunerConfig(lam=1.0, evaluation_trials=1),
            random_state=3,
        )
        result = tuner.run(budget=300, method="moderate", evaluate=False)
        # Paid for the requested tasks, within budget.
        assert result.spent <= 300 + 1e-6
        # Filtering means delivered <= requested in every iteration.
        for record in result.iterations:
            for name, requested in record.requested.items():
                assert record.acquired.get(name, 0) <= requested
        # The crowdsourcing reports account for every submission.
        for report in crowd.reports:
            assert (
                report.delivered
                == report.submitted
                - report.mistakes_filtered
                - report.duplicates_filtered
            )


class TestLambdaTradeoffShape:
    def test_higher_lambda_gives_no_worse_fairness(self, tiny_task):
        """Table 4 shape: raising lambda should not hurt Avg. EER much."""
        eers = {}
        for lam in (0.0, 10.0):
            sliced = tiny_task.initial_sliced_dataset(
                {"slice_0": 20, "slice_1": 60, "slice_2": 60}, 100, random_state=5
            )
            source = GeneratorDataSource(tiny_task, random_state=6)
            tuner = make_tuner(tiny_task, sliced, source, lam=lam, seed=7, trials=2)
            result = tuner.run(budget=150, method="oneshot", lam=lam)
            eers[lam] = result.final_report.avg_eer
        assert eers[10.0] <= eers[0.0] + 0.05
