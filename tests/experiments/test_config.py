"""Tests for repro.experiments.config."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, fast_training_config
from repro.utils.exceptions import ConfigurationError


class TestFastTrainingConfig:
    def test_returns_training_config(self):
        config = fast_training_config(epochs=17)
        assert config.epochs == 17
        assert config.optimizer == "adam"


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.dataset == "fashion_like"
        assert config.trials >= 1

    def test_training_config_uses_epochs(self):
        config = ExperimentConfig(epochs=13)
        assert config.training_config().epochs == 13

    def test_curve_config_uses_points_and_repeats(self):
        config = ExperimentConfig(curve_points=4, curve_repeats=2)
        curve_config = config.curve_config()
        assert curve_config.n_points == 4
        assert curve_config.n_repeats == 2
        assert curve_config.strategy == "amortized"

    def test_curve_config_strategy_override(self):
        config = ExperimentConfig()
        assert config.curve_config("exhaustive").strategy == "exhaustive"

    @pytest.mark.parametrize(
        "kwargs", [{"budget": -1.0}, {"trials": 0}, {"methods": ()}]
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)
