"""Tests for repro.experiments.runner (kept tiny for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    MethodAggregate,
    MethodOutcome,
    budget_sweep,
    compare_methods,
    prepare_instance,
    run_method,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def small_config() -> ExperimentConfig:
    """A deliberately tiny experiment so the runner tests stay fast."""
    return ExperimentConfig(
        dataset="adult_like",
        scenario="basic",
        budget=80.0,
        methods=("uniform", "oneshot"),
        lam=1.0,
        trials=1,
        validation_size=80,
        curve_points=3,
        curve_repeats=1,
        epochs=12,
        seed=0,
        extra={"base_size": 60},
    )


class TestPrepareInstance:
    def test_instance_matches_scenario(self, small_config):
        sliced, source = prepare_instance(small_config, seed=0)
        assert set(sliced.names) == {
            "White_Male",
            "White_Female",
            "Black_Male",
            "Black_Female",
        }
        assert set(sliced.sizes().tolist()) == {60}
        assert source.available("White_Male") is None

    def test_different_seeds_give_different_data(self, small_config):
        a, _ = prepare_instance(small_config, seed=0)
        b, _ = prepare_instance(small_config, seed=1)
        assert not np.array_equal(
            a["White_Male"].train.features, b["White_Male"].train.features
        )


class TestRunMethod:
    def test_original_pseudo_method(self, small_config):
        outcome = run_method(small_config, "original", trial=0)
        assert outcome.method == "original"
        assert outcome.spent == 0.0
        assert outcome.loss == outcome.initial_loss

    def test_real_method_spends_budget(self, small_config):
        outcome = run_method(small_config, "uniform", trial=0)
        assert outcome.spent <= small_config.budget + 1e-6
        assert sum(outcome.acquired.values()) > 0
        assert np.isfinite(outcome.loss) and np.isfinite(outcome.avg_eer)

    def test_mlp_model_option(self, small_config):
        config = ExperimentConfig(
            dataset=small_config.dataset,
            scenario="basic",
            budget=40.0,
            methods=("uniform",),
            trials=1,
            validation_size=60,
            curve_points=3,
            epochs=8,
            extra={"base_size": 50, "model": "mlp", "hidden_sizes": (8,)},
        )
        outcome = run_method(config, "uniform", trial=0)
        assert np.isfinite(outcome.loss)

    def test_unknown_model_kind_rejected(self, small_config):
        config = ExperimentConfig(extra={"model": "transformer"})
        with pytest.raises(ConfigurationError):
            run_method(config, "uniform", trial=0)


class TestAggregation:
    def test_from_outcomes_statistics(self):
        outcomes = [
            MethodOutcome(
                method="uniform",
                trial=t,
                loss=0.5 + 0.1 * t,
                avg_eer=0.2,
                max_eer=0.4,
                initial_loss=0.6,
                initial_avg_eer=0.25,
                initial_max_eer=0.5,
                iterations=1,
                spent=100.0,
                acquired={"a": 10 + t},
            )
            for t in range(3)
        ]
        aggregate = MethodAggregate.from_outcomes(outcomes)
        assert aggregate.loss_mean == pytest.approx(0.6)
        assert aggregate.loss_std > 0
        assert aggregate.acquired_mean["a"] == pytest.approx(11.0)

    def test_empty_outcomes_rejected(self):
        with pytest.raises(ConfigurationError):
            MethodAggregate.from_outcomes([])

    def test_compare_methods_includes_original(self, small_config):
        aggregates = compare_methods(small_config, include_original=True)
        assert "original" in aggregates
        for method in small_config.methods:
            assert method in aggregates

    def test_budget_sweep_series_shape(self, small_config):
        series = budget_sweep(small_config, budgets=[40.0, 80.0])
        for method in small_config.methods:
            assert len(series[method]) == 2
            budgets = [point[0] for point in series[method]]
            assert budgets == [40.0, 80.0]


class TestBuildSources:
    def test_generator_kind_matches_legacy_single_source(self, small_config):
        from repro.acquisition.source import GeneratorDataSource
        from repro.experiments.runner import prepare_named_instance

        _, sources = prepare_named_instance(small_config, seed=0)
        assert list(sources) == ["generator"]
        assert isinstance(sources["generator"], GeneratorDataSource)

    def test_every_kind_builds_and_is_deterministic(self, small_config):
        import numpy as np

        from repro.datasets.registry import build_task
        from repro.experiments.runner import SOURCE_KINDS, build_sources

        task = build_task(small_config.dataset)
        for kind in SOURCE_KINDS:
            first = build_sources(kind, task, seed=5, base_size=60)
            second = build_sources(kind, task, seed=5, base_size=60)
            assert list(first) == list(second)
            name = task.slice_names[0]
            left = first[next(iter(first))].acquire(name, 7)
            right = second[next(iter(second))].acquire(name, 7)
            assert np.array_equal(left.features, right.features)

    def test_unknown_kind_rejected(self, small_config):
        from repro.datasets.registry import build_task
        from repro.experiments.runner import build_sources
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_sources("teleporter", build_task(small_config.dataset), seed=0)

    def test_mixed_scenario_runs_with_failover(self, small_config):
        from dataclasses import replace

        from repro.experiments.runner import run_method

        config = replace(
            small_config, scenario="mixed_sources", budget=120.0, trials=1
        )
        outcome = run_method(config, "uniform", trial=0)
        assert outcome.spent > 0
        assert sum(outcome.acquired.values()) > 0
