"""Tests for repro.experiments.influence (the Figure 7 experiment)."""

from __future__ import annotations

import pytest

from repro.experiments.influence import (
    influence_experiment,
    influence_magnitude_by_step,
)
from repro.utils.exceptions import ConfigurationError


class TestInfluenceExperiment:
    def test_points_cover_all_other_slices_and_steps(self, tiny_task, fast_training):
        points = influence_experiment(
            tiny_task,
            target_slice="slice_0",
            base_size=40,
            target_initial_size=10,
            growth_steps=2,
            growth_per_step=30,
            validation_size=40,
            trainer_config=fast_training,
            n_repeats=1,
            random_state=0,
        )
        observed = {p.slice_name for p in points}
        assert observed == {"slice_1", "slice_2"}
        assert len(points) == 2 * 2  # steps x other slices

    def test_imbalance_change_is_monotone_in_target_size(self, tiny_task, fast_training):
        points = influence_experiment(
            tiny_task,
            target_slice="slice_0",
            base_size=40,
            target_initial_size=10,
            growth_steps=3,
            growth_per_step=40,
            validation_size=40,
            trainer_config=fast_training,
            n_repeats=1,
            random_state=0,
        )
        # Ordered by how large the grown slice has become, the change of the
        # imbalance ratio increases monotonically (it can start negative when
        # the grown slice is still catching up to the others, as here).
        by_target = {}
        for point in points:
            by_target[point.target_size] = point.imbalance_change
        ordered_changes = [by_target[size] for size in sorted(by_target)]
        assert len(ordered_changes) == 3
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(ordered_changes, ordered_changes[1:])
        )

    def test_target_sizes_grow(self, tiny_task, fast_training):
        points = influence_experiment(
            tiny_task,
            target_slice="slice_1",
            base_size=30,
            target_initial_size=10,
            growth_steps=2,
            growth_per_step=25,
            validation_size=30,
            trainer_config=fast_training,
            n_repeats=1,
            random_state=0,
        )
        sizes = sorted({p.target_size for p in points})
        assert sizes == [35, 60]

    def test_unknown_target_slice_rejected(self, tiny_task):
        with pytest.raises(ConfigurationError):
            influence_experiment(tiny_task, target_slice="nope")


class TestInfluenceMagnitude:
    def test_aggregation_by_step(self, tiny_task, fast_training):
        points = influence_experiment(
            tiny_task,
            target_slice="slice_0",
            base_size=30,
            target_initial_size=10,
            growth_steps=2,
            growth_per_step=30,
            validation_size=30,
            trainer_config=fast_training,
            n_repeats=1,
            random_state=0,
        )
        magnitudes = influence_magnitude_by_step(points)
        assert len(magnitudes) == 2
        assert all(m >= 0 for _, m in magnitudes)
