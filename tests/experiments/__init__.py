"""Test package."""
