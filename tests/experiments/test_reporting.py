"""Tests for repro.experiments.reporting."""

from __future__ import annotations

from repro.engine.cache import CacheStats
from repro.experiments.reporting import (
    allocations_table,
    cache_stats_table,
    comparison_table,
    engine_cache_stats,
    methods_table,
    series_text,
)
from repro.experiments.runner import MethodAggregate


def make_aggregate(method: str, loss: float = 0.5, eer: float = 0.2) -> MethodAggregate:
    return MethodAggregate(
        method=method,
        loss_mean=loss,
        loss_std=0.01,
        avg_eer_mean=eer,
        avg_eer_std=0.005,
        max_eer_mean=eer * 2,
        max_eer_std=0.01,
        iterations_mean=2.0,
        spent_mean=100.0,
        acquired_mean={"a": 30.0, "b": 70.0},
    )


class TestMethodsTable:
    def test_contains_methods_and_metrics(self):
        aggregates = {"uniform": make_aggregate("uniform"), "moderate": make_aggregate("moderate", 0.4, 0.1)}
        text = methods_table(aggregates, title="Table 2")
        assert "Table 2" in text
        assert "uniform" in text and "moderate" in text
        assert "0.400" in text

    def test_method_order_respected(self):
        aggregates = {"a": make_aggregate("a"), "b": make_aggregate("b")}
        text = methods_table(aggregates, method_order=["b", "a"])
        assert text.index("b") < text.index("a ")


class TestAllocationsTable:
    def test_contains_slices(self):
        aggregates = {"moderate": make_aggregate("moderate")}
        text = allocations_table(aggregates, slice_names=["a", "b"])
        assert "a" in text and "b" in text
        assert "30" in text and "70" in text


class TestComparisonTable:
    def test_settings_as_column_groups(self):
        per_setting = {
            "basic": {"uniform": make_aggregate("uniform"), "moderate": make_aggregate("moderate")},
            "bad_for_uniform": {"uniform": make_aggregate("uniform", 0.7), "moderate": make_aggregate("moderate", 0.5)},
        }
        text = comparison_table(per_setting, methods=["uniform", "moderate"])
        assert "basic: Loss" in text
        assert "bad_for_uniform: Avg. EER" in text


class TestSeriesText:
    def test_renders_series(self):
        text = series_text(
            {"moderate": [(1000, 0.25), (2000, 0.22)]},
            x_label="budget",
            y_label="loss",
            title="Figure 10",
        )
        assert "Figure 10" in text and "[moderate]" in text


class TestCacheStatsTable:
    def test_renders_hit_rates_and_training_count(self):
        stats = {
            "results": CacheStats(hits=3, misses=1),
            "curves": CacheStats(hits=0, misses=4, evictions=1),
        }
        text = cache_stats_table(stats, trainings_performed=7)
        assert "results" in text and "curves" in text
        assert "75%" in text  # 3 hits / 4 lookups
        assert "7 trainings performed" in text

    def test_cache_less_tuner_renders_placeholder(self):
        text = cache_stats_table({})
        assert "no caches attached" in text

    def test_engine_cache_stats_reads_the_live_caches(
        self, tiny_task, fast_training, fast_curves
    ):
        from repro.acquisition.source import GeneratorDataSource
        from repro.core.tuner import SliceTuner, SliceTunerConfig
        from repro.engine.cache import InMemoryResultCache

        sliced = tiny_task.initial_sliced_dataset(30, 50, random_state=0)
        tuner = SliceTuner(
            sliced,
            GeneratorDataSource(tiny_task, random_state=1),
            trainer_config=fast_training,
            curve_config=fast_curves,
            config=SliceTunerConfig(incremental_curves=True),
            random_state=0,
            result_cache=InMemoryResultCache(),
        )
        stats = engine_cache_stats(tuner)
        assert set(stats) == {"results", "curves"}
        tuner.estimate_curves()
        cold = tuner.estimator.trainings_performed
        assert stats["curves"].misses == len(sliced.names)
        tuner.estimate_curves()  # warm: served from the curve cache
        assert tuner.estimator.trainings_performed == cold
        # Stats count pool-fingerprint transitions, not polls: the warm
        # re-estimate of unchanged pools adds nothing.
        assert stats["curves"].misses == len(sliced.names)
        assert stats["curves"].hits == 0
        text = cache_stats_table(stats, trainings_performed=cold)
        assert f"{cold} trainings performed" in text


class TestServerStatsTable:
    STATS = {
        "uptime_seconds": 12.5,
        "requests": 42,
        "errors": 1,
        "campaigns_submitted": 3,
        "campaigns_total": 3,
        "campaigns_active": 1,
        "campaigns_completed": 2,
        "campaigns_paused": 0,
        "campaigns_failed": 0,
        "scheduler_steps": 17,
        "pump_running": True,
        "pump_errors": 0,
        "sse_connections": 2,
        "events_streamed": 55,
        "cache": {"requests": 10, "hits": 4, "misses": 6, "evictions": 0},
    }

    def test_renders_known_counters_and_cache(self):
        from repro.experiments.reporting import server_stats_table

        text = server_stats_table(self.STATS)
        assert "Tuner service health" in text
        assert "HTTP requests" in text and "42" in text
        assert "campaigns completed" in text
        assert "events streamed" in text and "55" in text
        assert "shared result cache" in text and "4/10 hits" in text

    def test_tolerates_missing_and_unknown_keys(self):
        from repro.experiments.reporting import server_stats_table

        text = server_stats_table({"requests": 7, "new_counter": 1})
        assert "HTTP requests" in text and "7" in text
        assert "new_counter" not in text

    def test_status_line_is_one_line(self):
        from repro.experiments.reporting import server_status_line

        line = server_status_line(self.STATS)
        assert "\n" not in line
        assert "1 active / 3 stored campaign(s)" in line
        assert "55 event(s) streamed" in line
