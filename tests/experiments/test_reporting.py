"""Tests for repro.experiments.reporting."""

from __future__ import annotations

from repro.experiments.reporting import (
    allocations_table,
    comparison_table,
    methods_table,
    series_text,
)
from repro.experiments.runner import MethodAggregate


def make_aggregate(method: str, loss: float = 0.5, eer: float = 0.2) -> MethodAggregate:
    return MethodAggregate(
        method=method,
        loss_mean=loss,
        loss_std=0.01,
        avg_eer_mean=eer,
        avg_eer_std=0.005,
        max_eer_mean=eer * 2,
        max_eer_std=0.01,
        iterations_mean=2.0,
        spent_mean=100.0,
        acquired_mean={"a": 30.0, "b": 70.0},
    )


class TestMethodsTable:
    def test_contains_methods_and_metrics(self):
        aggregates = {"uniform": make_aggregate("uniform"), "moderate": make_aggregate("moderate", 0.4, 0.1)}
        text = methods_table(aggregates, title="Table 2")
        assert "Table 2" in text
        assert "uniform" in text and "moderate" in text
        assert "0.400" in text

    def test_method_order_respected(self):
        aggregates = {"a": make_aggregate("a"), "b": make_aggregate("b")}
        text = methods_table(aggregates, method_order=["b", "a"])
        assert text.index("b") < text.index("a ")


class TestAllocationsTable:
    def test_contains_slices(self):
        aggregates = {"moderate": make_aggregate("moderate")}
        text = allocations_table(aggregates, slice_names=["a", "b"])
        assert "a" in text and "b" in text
        assert "30" in text and "70" in text


class TestComparisonTable:
    def test_settings_as_column_groups(self):
        per_setting = {
            "basic": {"uniform": make_aggregate("uniform"), "moderate": make_aggregate("moderate")},
            "bad_for_uniform": {"uniform": make_aggregate("uniform", 0.7), "moderate": make_aggregate("moderate", 0.5)},
        }
        text = comparison_table(per_setting, methods=["uniform", "moderate"])
        assert "basic: Loss" in text
        assert "bad_for_uniform: Avg. EER" in text


class TestSeriesText:
    def test_renders_series(self):
        text = series_text(
            {"moderate": [(1000, 0.25), (2000, 0.22)]},
            x_label="budget",
            y_label="loss",
            title="Figure 10",
        )
        assert "Figure 10" in text and "[moderate]" in text
