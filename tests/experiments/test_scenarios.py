"""Tests for repro.experiments.scenarios."""

from __future__ import annotations

import pytest

from repro.datasets.fashion import fashion_like_task
from repro.experiments.scenarios import build_scenario, list_scenarios
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def task():
    return fashion_like_task()


class TestScenarioRegistry:
    def test_expected_scenarios_listed(self):
        names = list_scenarios()
        for expected in (
            "basic",
            "bad_for_uniform",
            "bad_for_water_filling",
            "exponential",
            "small_slices",
        ):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("adversarial")

    @pytest.mark.parametrize("name", ["basic", "bad_for_uniform", "bad_for_water_filling", "exponential", "small_slices"])
    def test_every_scenario_sizes_every_slice(self, task, name):
        sizes = build_scenario(name).initial_sizes(task, base_size=120)
        assert set(sizes) == set(task.slice_names)
        assert all(size > 0 for size in sizes.values())


class TestScenarioShapes:
    def test_basic_equal_sizes(self, task):
        sizes = build_scenario("basic").initial_sizes(task, 150)
        assert set(sizes.values()) == {150}

    def test_bad_for_uniform_has_starved_hard_slices(self, task):
        sizes = build_scenario("bad_for_uniform").initial_sizes(task, 200)
        # The hardest slice (largest noise) is starved, the easy ones are rich.
        hardest = max(task.slice_names, key=lambda n: task.blueprint(n).noise)
        easiest = min(task.slice_names, key=lambda n: task.blueprint(n).noise)
        assert sizes[hardest] < sizes[easiest]
        assert sizes[easiest] == 400

    def test_bad_for_water_filling_has_large_hard_slice(self, task):
        sizes = build_scenario("bad_for_water_filling").initial_sizes(task, 200)
        hardest = max(task.slice_names, key=lambda n: task.blueprint(n).noise)
        easiest = min(task.slice_names, key=lambda n: task.blueprint(n).noise)
        assert sizes[hardest] > sizes[easiest]
        assert sizes[hardest] == 600

    def test_exponential_sizes_decay(self, task):
        sizes = build_scenario("exponential").initial_sizes(task, 200)
        values = [sizes[name] for name in task.slice_names]
        assert values[0] == max(values)
        assert values == sorted(values, reverse=True)

    def test_small_slices_are_tiny(self, task):
        sizes = build_scenario("small_slices").initial_sizes(task, 180)
        assert max(sizes.values()) <= 30


class TestSourceScenarios:
    def test_source_kinds_attached(self):
        assert build_scenario("basic").source_kind == "generator"
        assert build_scenario("mixed_sources").source_kind == "mixed"
        assert build_scenario("flaky_source").source_kind == "flaky"

    def test_new_scenarios_listed_and_size_every_slice(self, task):
        names = list_scenarios()
        assert "mixed_sources" in names and "flaky_source" in names
        for name in ("mixed_sources", "flaky_source"):
            sizes = build_scenario(name).initial_sizes(task, base_size=100)
            assert set(sizes) == set(task.slice_names)
