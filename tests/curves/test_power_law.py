"""Tests for repro.curves.power_law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.power_law import FittedCurve, PowerLawCurve, PowerLawWithFloor
from repro.utils.exceptions import ConfigurationError


class TestPowerLawCurve:
    def test_prediction_matches_formula(self):
        curve = PowerLawCurve(b=2.0, a=0.5)
        assert curve.predict(4.0) == pytest.approx(2.0 * 4.0**-0.5)

    def test_vectorized_prediction(self):
        curve = PowerLawCurve(b=1.0, a=0.3)
        sizes = np.array([10.0, 100.0, 1000.0])
        predictions = curve.predict(sizes)
        assert predictions.shape == (3,)
        assert np.all(np.diff(predictions) < 0)

    def test_monotonically_decreasing(self):
        curve = PowerLawCurve(b=3.0, a=0.2)
        assert curve.predict(10) > curve.predict(100) > curve.predict(1000)

    def test_marginal_gain_positive_and_diminishing(self):
        curve = PowerLawCurve(b=2.0, a=0.4)
        early = curve.marginal_gain(10, 10)
        late = curve.marginal_gain(1000, 10)
        assert early > late > 0

    def test_size_for_loss_inverts_predict(self):
        curve = PowerLawCurve(b=2.0, a=0.3)
        size = curve.size_for_loss(0.5)
        assert curve.predict(size) == pytest.approx(0.5)

    def test_non_positive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawCurve(b=1.0, a=0.5).predict(0.0)

    @pytest.mark.parametrize("b, a", [(0.0, 0.5), (1.0, 0.0), (-1.0, 0.5)])
    def test_invalid_parameters_rejected(self, b, a):
        with pytest.raises(ConfigurationError):
            PowerLawCurve(b=b, a=a)

    def test_describe_matches_figure8_style(self):
        assert PowerLawCurve(b=2.894, a=0.204).describe() == "y = 2.894x^-0.204"


class TestPowerLawWithFloor:
    def test_prediction_includes_floor(self):
        curve = PowerLawWithFloor(b=2.0, a=0.5, c=0.3)
        assert curve.predict(1e12) == pytest.approx(0.3, abs=1e-5)

    def test_without_floor_drops_c(self):
        curve = PowerLawWithFloor(b=2.0, a=0.5, c=0.3)
        plain = curve.without_floor()
        assert isinstance(plain, PowerLawCurve)
        assert plain.b == 2.0 and plain.a == 0.5

    def test_negative_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerLawWithFloor(b=1.0, a=0.5, c=-0.1)

    def test_describe(self):
        assert "+ 0.100" in PowerLawWithFloor(b=1.0, a=0.5, c=0.1).describe()


class TestFittedCurve:
    def test_delegation_to_curve(self):
        fitted = FittedCurve(slice_name="s", curve=PowerLawCurve(b=2.0, a=0.4))
        assert fitted.b == 2.0 and fitted.a == 0.4
        assert fitted.predict(10) == pytest.approx(2.0 * 10**-0.4)

    def test_describe_includes_slice_name(self):
        fitted = FittedCurve(slice_name="Shirt", curve=PowerLawCurve(b=2.9, a=0.2))
        assert fitted.describe().startswith("Shirt:")
