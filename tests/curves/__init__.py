"""Test package."""
