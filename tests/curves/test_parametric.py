"""Tests for repro.curves.parametric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.parametric import (
    CURVE_FAMILIES,
    fit_family,
    select_best_family,
)
from repro.utils.exceptions import FittingError


def power_law_points(b=2.0, a=0.4, n=15):
    sizes = np.linspace(20, 800, n)
    return sizes, b * sizes**-a


class TestCurveFamilies:
    def test_expected_families_present(self):
        for name in (
            "power_law",
            "power_law_floor",
            "exponential",
            "logarithmic",
            "inverse_linear",
        ):
            assert name in CURVE_FAMILIES

    @pytest.mark.parametrize("name", sorted(CURVE_FAMILIES))
    def test_every_family_fits_power_law_data(self, name):
        sizes, losses = power_law_points()
        fitted = fit_family(name, sizes, losses)
        assert fitted.family == name
        assert np.isfinite(fitted.rmse)
        assert np.isfinite(fitted.predict(150.0))

    def test_power_law_family_recovers_parameters(self):
        sizes, losses = power_law_points(b=3.0, a=0.5)
        fitted = fit_family("power_law", sizes, losses)
        b, a = fitted.params
        assert b == pytest.approx(3.0, rel=0.05)
        assert a == pytest.approx(0.5, abs=0.05)

    def test_unknown_family_rejected(self):
        with pytest.raises(FittingError):
            fit_family("spline", *power_law_points())


class TestSelectBestFamily:
    def test_power_law_wins_on_power_law_data(self):
        sizes, losses = power_law_points(b=2.5, a=0.3)
        best = select_best_family(sizes, losses)
        assert best.family in ("power_law", "power_law_floor")
        assert best.rmse < 1e-6

    def test_restricting_candidate_families(self):
        sizes, losses = power_law_points()
        best = select_best_family(sizes, losses, families=["logarithmic", "exponential"])
        assert best.family in ("logarithmic", "exponential")

    def test_exponential_data_prefers_exponential_over_logarithmic(self):
        sizes = np.linspace(10, 400, 20)
        losses = 1.5 * np.exp(-0.01 * sizes) + 0.2
        exp_fit = fit_family("exponential", sizes, losses)
        log_fit = fit_family("logarithmic", sizes, losses)
        assert exp_fit.rmse < log_fit.rmse
