"""Tests for repro.curves.estimator."""

from __future__ import annotations

import pytest

from repro.curves.estimator import (
    CurveEstimationConfig,
    CurvePoint,
    LearningCurveEstimator,
    default_model_factory,
)
from repro.curves.power_law import FittedCurve
from repro.utils.exceptions import ConfigurationError, FittingError


class TestCurveEstimationConfig:
    def test_defaults_valid(self):
        config = CurveEstimationConfig()
        assert config.strategy == "amortized"
        assert len(config.fractions()) == config.n_points

    def test_fractions_span_range(self):
        config = CurveEstimationConfig(n_points=5, min_fraction=0.2, max_fraction=1.0)
        fractions = config.fractions()
        assert fractions[0] == pytest.approx(0.2)
        assert fractions[-1] == pytest.approx(1.0)

    def test_single_point(self):
        config = CurveEstimationConfig(n_points=1)
        assert config.fractions().tolist() == [1.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_points": 0},
            {"n_repeats": 0},
            {"min_fraction": 0.0},
            {"min_fraction": 0.9, "max_fraction": 0.5},
            {"strategy": "magic"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CurveEstimationConfig(**kwargs)


class TestLearningCurveEstimator:
    def test_estimate_returns_curve_per_slice(self, tiny_sliced, fast_training, fast_curves):
        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        curves = estimator.estimate(tiny_sliced)
        assert set(curves) == set(tiny_sliced.names)
        for curve in curves.values():
            assert isinstance(curve, FittedCurve)
            assert curve.a > 0 and curve.b > 0

    def test_amortized_trains_fewer_models_than_exhaustive(
        self, tiny_sliced, fast_training
    ):
        amortized = LearningCurveEstimator(
            trainer_config=fast_training,
            config=CurveEstimationConfig(n_points=3, n_repeats=1, strategy="amortized"),
            random_state=0,
        )
        exhaustive = LearningCurveEstimator(
            trainer_config=fast_training,
            config=CurveEstimationConfig(n_points=3, n_repeats=1, strategy="exhaustive"),
            random_state=0,
        )
        amortized.estimate(tiny_sliced)
        exhaustive.estimate(tiny_sliced)
        assert amortized.trainings_performed == 3
        assert exhaustive.trainings_performed == 3 * len(tiny_sliced)

    def test_collect_points_sizes_scale_with_fraction(
        self, tiny_sliced, fast_training, fast_curves
    ):
        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        points = estimator.collect_points(tiny_sliced)
        sizes = {p.size for p in points if p.slice_name == tiny_sliced.names[0]}
        assert len(sizes) > 1
        assert max(sizes) <= tiny_sliced[tiny_sliced.names[0]].size

    def test_fit_points_requires_points_for_each_slice(self):
        estimator = LearningCurveEstimator()
        points = [CurvePoint("a", 10, 1.0, 0), CurvePoint("a", 100, 0.5, 0)]
        with pytest.raises(FittingError):
            estimator.fit_points(points, ["a", "b"])

    def test_fit_points_handles_degenerate_single_size(self):
        estimator = LearningCurveEstimator()
        points = [CurvePoint("a", 50, 0.8, 0), CurvePoint("a", 50, 0.85, 1)]
        curves = estimator.fit_points(points, ["a"])
        # Falls back to a nearly flat curve anchored near the measured loss.
        assert curves["a"].predict(50) == pytest.approx(0.82, abs=0.15)

    def test_default_model_factory_produces_trainable_model(self):
        model = default_model_factory(4)
        assert model.n_classes == 4

    def test_custom_model_factory_used(self, tiny_sliced, fast_training, fast_curves):
        created = []

        def factory(n_classes):
            model = default_model_factory(n_classes)
            created.append(model)
            return model

        estimator = LearningCurveEstimator(
            model_factory=factory,
            trainer_config=fast_training,
            config=fast_curves,
            random_state=0,
        )
        estimator.estimate(tiny_sliced)
        assert len(created) == estimator.trainings_performed


class TestCurveQuality:
    def test_estimated_curves_decrease_for_learnable_task(
        self, tiny_sliced, fast_training
    ):
        estimator = LearningCurveEstimator(
            trainer_config=fast_training,
            config=CurveEstimationConfig(n_points=5, n_repeats=2),
            random_state=0,
        )
        curves = estimator.estimate(tiny_sliced)
        for curve in curves.values():
            assert curve.predict(20) > curve.predict(2000)


class TestFitPointsGrouping:
    """fit_points groups points by slice in a single pass."""

    def test_points_with_unknown_slice_names_are_ignored(self):
        estimator = LearningCurveEstimator()
        points = [
            CurvePoint("a", 10, 1.0, 0),
            CurvePoint("a", 100, 0.5, 0),
            CurvePoint("ghost", 50, 0.9, 0),
        ]
        curves = estimator.fit_points(points, ["a"])
        assert set(curves) == {"a"}

    def test_many_slices_fit_from_interleaved_points(self):
        estimator = LearningCurveEstimator()
        names = [f"s{i}" for i in range(20)]
        points = []
        for size in (10, 50, 200):
            for name in names:
                points.append(CurvePoint(name, size, 2.0 * size**-0.3, 0))
        curves = estimator.fit_points(points, names)
        assert set(curves) == set(names)


class TestEstimateOnly:
    """The ``only`` parameter restricts measurement to named slices."""

    def test_only_restricts_returned_curves(self, tiny_sliced, fast_training, fast_curves):
        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        target = tiny_sliced.names[0]
        curves = estimator.estimate(tiny_sliced, only=[target])
        assert set(curves) == {target}

    def test_only_with_unknown_slice_rejected(self, tiny_sliced, fast_training, fast_curves):
        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=fast_curves, random_state=0
        )
        with pytest.raises(ConfigurationError):
            estimator.estimate(tiny_sliced, only=["nope"])

    def test_exhaustive_only_trains_fewer_models(self, tiny_sliced, fast_training):
        config = CurveEstimationConfig(n_points=3, n_repeats=1, strategy="exhaustive")
        estimator = LearningCurveEstimator(
            trainer_config=fast_training, config=config, random_state=0
        )
        estimator.estimate(tiny_sliced, only=[tiny_sliced.names[0]])
        assert estimator.trainings_performed == 3
