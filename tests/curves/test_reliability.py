"""Tests for repro.curves.reliability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.power_law import PowerLawCurve
from repro.curves.reliability import average_curves, curve_reliability, fit_averaged_curve
from repro.utils.exceptions import FittingError


class TestAverageCurves:
    def test_average_of_identical_curves_is_identity(self):
        curve = PowerLawCurve(b=2.0, a=0.4)
        averaged = average_curves([curve, curve, curve])
        assert averaged.b == pytest.approx(2.0)
        assert averaged.a == pytest.approx(0.4)

    def test_average_is_between_inputs(self):
        averaged = average_curves(
            [PowerLawCurve(b=1.0, a=0.2), PowerLawCurve(b=4.0, a=0.6)]
        )
        assert 1.0 < averaged.b < 4.0
        assert averaged.a == pytest.approx(0.4)

    def test_geometric_mean_of_b(self):
        averaged = average_curves(
            [PowerLawCurve(b=1.0, a=0.3), PowerLawCurve(b=4.0, a=0.3)]
        )
        assert averaged.b == pytest.approx(2.0)

    def test_empty_list_rejected(self):
        with pytest.raises(FittingError):
            average_curves([])


class TestCurveReliability:
    def test_perfect_fit_scores_one(self):
        curve = PowerLawCurve(b=2.0, a=0.3)
        sizes = np.array([10.0, 100.0, 500.0])
        losses = curve.predict(sizes)
        assert curve_reliability(curve, sizes, losses) == pytest.approx(1.0)

    def test_noisier_points_score_lower(self):
        curve = PowerLawCurve(b=2.0, a=0.3)
        sizes = np.linspace(10, 500, 10)
        clean = np.asarray(curve.predict(sizes))
        rng = np.random.default_rng(0)
        noisy = clean * np.exp(rng.normal(0, 0.5, size=10))
        assert curve_reliability(curve, sizes, noisy) < curve_reliability(
            curve, sizes, clean
        )

    def test_score_bounded_by_one(self):
        curve = PowerLawCurve(b=5.0, a=1.0)
        sizes = np.array([10.0, 100.0])
        losses = np.array([10.0, 0.001])
        assert 0.0 <= curve_reliability(curve, sizes, losses) <= 1.0


class TestFitAveragedCurve:
    def test_single_split_equals_plain_fit(self):
        sizes = np.linspace(20, 500, 12)
        losses = 2.0 * sizes**-0.4
        fitted = fit_averaged_curve("s", sizes, losses, n_splits=1)
        assert fitted.slice_name == "s"
        assert fitted.curve.a == pytest.approx(0.4, abs=1e-6)
        assert fitted.reliability == pytest.approx(1.0, abs=1e-6)

    def test_multiple_splits_average_out_noise(self):
        rng = np.random.default_rng(3)
        sizes = np.linspace(20, 500, 24)
        losses = 2.0 * sizes**-0.4 * np.exp(rng.normal(0, 0.1, 24))
        fitted = fit_averaged_curve("s", sizes, losses, n_splits=3)
        assert fitted.curve.a == pytest.approx(0.4, abs=0.15)

    def test_too_few_points_for_splits_falls_back(self):
        sizes = np.array([20.0, 200.0])
        losses = np.array([1.0, 0.5])
        fitted = fit_averaged_curve("s", sizes, losses, n_splits=5)
        assert fitted.curve.a > 0
