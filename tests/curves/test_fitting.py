"""Tests for repro.curves.fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves.fitting import (
    MAX_EXPONENT,
    MIN_EXPONENT,
    fit_power_law,
    fit_power_law_with_floor,
    weighted_log_rmse,
)
from repro.curves.power_law import PowerLawCurve
from repro.utils.exceptions import FittingError


def synthetic_points(b=2.5, a=0.35, noise=0.0, n=12, seed=0):
    rng = np.random.default_rng(seed)
    sizes = np.linspace(20, 500, n)
    losses = b * sizes**-a
    if noise:
        losses = losses * np.exp(rng.normal(0, noise, size=n))
    return sizes, losses


class TestFitPowerLaw:
    def test_recovers_exact_parameters(self):
        sizes, losses = synthetic_points(b=2.5, a=0.35)
        curve = fit_power_law(sizes, losses)
        assert curve.b == pytest.approx(2.5, rel=1e-6)
        assert curve.a == pytest.approx(0.35, rel=1e-6)

    def test_recovers_parameters_under_noise(self):
        sizes, losses = synthetic_points(b=3.0, a=0.25, noise=0.05, seed=1)
        curve = fit_power_law(sizes, losses)
        assert curve.a == pytest.approx(0.25, abs=0.08)
        assert curve.b == pytest.approx(3.0, rel=0.4)

    def test_weights_prioritize_large_subsets(self):
        sizes, losses = synthetic_points(b=2.0, a=0.3)
        # Corrupt the smallest point badly; with size-proportional weights the
        # fit should barely move.
        losses = losses.copy()
        losses[0] *= 3.0
        curve = fit_power_law(sizes, losses)
        assert curve.a == pytest.approx(0.3, abs=0.08)

    def test_flat_losses_produce_near_zero_exponent(self):
        sizes = np.array([10.0, 50.0, 200.0, 500.0])
        losses = np.full(4, 0.7)
        curve = fit_power_law(sizes, losses)
        assert curve.a == pytest.approx(MIN_EXPONENT, abs=1e-6)
        # The flat curve still predicts close to the observed loss level.
        assert curve.predict(100.0) == pytest.approx(0.7, rel=0.05)

    def test_increasing_losses_clipped_to_flat(self):
        sizes = np.array([10.0, 100.0, 1000.0])
        losses = np.array([0.2, 0.5, 0.9])
        curve = fit_power_law(sizes, losses)
        assert MIN_EXPONENT <= curve.a <= MAX_EXPONENT

    def test_single_size_rejected(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([100.0, 100.0]), np.array([0.5, 0.6]))

    def test_non_positive_losses_filtered(self):
        sizes = np.array([10.0, 50.0, 100.0, 200.0])
        losses = np.array([1.0, -0.1, 0.5, 0.4])
        curve = fit_power_law(sizes, losses)
        assert curve.a > 0

    def test_all_invalid_points_rejected(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([10.0, 20.0]), np.array([-1.0, 0.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(FittingError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0]))


class TestFitPowerLawWithFloor:
    def test_recovers_floor(self):
        sizes = np.linspace(20, 5000, 30)
        losses = 4.0 * sizes**-0.6 + 0.25
        curve = fit_power_law_with_floor(sizes, losses)
        assert curve.c == pytest.approx(0.25, abs=0.05)
        assert curve.a == pytest.approx(0.6, abs=0.1)

    def test_zero_floor_when_pure_power_law(self):
        sizes, losses = synthetic_points(b=2.0, a=0.4, n=20)
        curve = fit_power_law_with_floor(sizes, losses)
        assert curve.c == pytest.approx(0.0, abs=0.02)


class TestWeightedLogRmse:
    def test_zero_for_perfect_fit(self):
        sizes, losses = synthetic_points()
        curve = fit_power_law(sizes, losses)
        assert weighted_log_rmse(curve, sizes, losses) == pytest.approx(0.0, abs=1e-6)

    def test_larger_for_worse_fit(self):
        sizes, losses = synthetic_points(noise=0.2, seed=2)
        good = fit_power_law(sizes, losses)
        bad = PowerLawCurve(b=100.0, a=1.5)
        assert weighted_log_rmse(bad, sizes, losses) > weighted_log_rmse(
            good, sizes, losses
        )
