"""Test package."""
