"""Test package."""
