"""Tests for repro.bandit.rotting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandit.rotting import RottingBanditAcquirer
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def acquirer(fast_training) -> RottingBanditAcquirer:
    return RottingBanditAcquirer(
        batch_size=20,
        window=2,
        exploration=0.2,
        trainer_config=fast_training,
        random_state=0,
    )


class TestRottingBanditAcquirer:
    def test_budget_respected(self, tiny_sliced, tiny_source, acquirer):
        result = acquirer.run(tiny_sliced, budget=100, source=tiny_source)
        assert result.spent <= 100 + 1e-6
        assert sum(result.total_acquired.values()) > 0

    def test_every_arm_tried_at_least_once(self, tiny_sliced, tiny_source, acquirer):
        result = acquirer.run(tiny_sliced, budget=150, source=tiny_source)
        assert all(result.pulls[name] >= 1 for name in tiny_sliced.names)

    def test_rewards_recorded_per_pull(self, tiny_sliced, tiny_source, acquirer):
        result = acquirer.run(tiny_sliced, budget=100, source=tiny_source)
        assert len(result.rewards) == sum(result.pulls.values())

    def test_final_metrics_populated(self, tiny_sliced, tiny_source, acquirer):
        result = acquirer.run(tiny_sliced, budget=80, source=tiny_source)
        assert np.isfinite(result.final_loss)
        assert np.isfinite(result.final_avg_eer)

    def test_slices_grow(self, tiny_sliced, tiny_source, acquirer):
        before = tiny_sliced.sizes().sum()
        result = acquirer.run(tiny_sliced, budget=100, source=tiny_source)
        assert tiny_sliced.sizes().sum() == before + sum(result.total_acquired.values())

    def test_zero_budget(self, tiny_sliced, tiny_source, acquirer):
        result = acquirer.run(tiny_sliced, budget=0, source=tiny_source)
        assert result.spent == 0.0
        assert sum(result.pulls.values()) == 0

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            RottingBanditAcquirer(batch_size=0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RottingBanditAcquirer(window=0)


class TestRottingBanditStrategy:
    def test_zero_delivery_records_neutral_reward(self):
        from collections import deque

        from repro.bandit.rotting import RottingBanditStrategy
        from repro.core.plan import IterationRecord

        strategy = RottingBanditStrategy(window=3)
        strategy._recent = {"a": deque(maxlen=3), "b": deque(maxlen=3)}
        strategy._losses = {"a": 0.5, "b": 0.4}
        strategy._last_arm = "a"
        # The pulled arm's pool ran dry: nothing delivered, nothing spent.
        record = IterationRecord(iteration=1, requested={"a": 10}, spent=0.0)
        assert strategy.observe(None, record) is True
        assert list(strategy._recent["a"]) == [0.0]
        # The stale losses are kept (the data did not change).
        assert strategy._losses == {"a": 0.5, "b": 0.4}

    def test_checkpoint_round_trips_configuration(self):
        import json

        from repro.core.registry import get_strategy

        strategy = get_strategy("bandit", batch_size=7, window=2, exploration=0.5)
        strategy._recent = {"a": __import__("collections").deque([1.0], maxlen=2)}
        strategy._losses = {"a": 0.5}
        strategy._pulls = 1
        restored = get_strategy("bandit")
        restored.load_state_dict(json.loads(json.dumps(strategy.state_dict())))
        assert restored.batch_size == 7
        assert restored.window == 2
        assert restored.exploration == 0.5
        assert list(restored._recent["a"]) == [1.0]
