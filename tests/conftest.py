"""Shared fixtures: small, fast instances of every substrate.

Everything here is deliberately tiny (few slices, few features, few epochs)
so the full unit-test suite runs in a couple of minutes; the benchmarks use
larger settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.source import GeneratorDataSource
from repro.curves.estimator import CurveEstimationConfig
from repro.datasets.blueprints import SliceBlueprint, SyntheticTask, orthogonal_centers
from repro.ml.data import Dataset
from repro.ml.train import TrainingConfig
from repro.slices.sliced_dataset import SlicedDataset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_task() -> SyntheticTask:
    """A 3-slice, 3-class task small enough to train on in milliseconds."""
    centers = orthogonal_centers(3, 8, radius=3.0)
    blueprints = [
        SliceBlueprint(
            name=f"slice_{i}",
            centers=centers[i : i + 1],
            cluster_labels=(i,),
            noise=0.8 + 0.3 * i,
            label_noise=0.01,
            cost=1.0 + 0.2 * i,
        )
        for i in range(3)
    ]
    return SyntheticTask(name="tiny", blueprints=blueprints, n_classes=3)


@pytest.fixture
def tiny_sliced(tiny_task: SyntheticTask) -> SlicedDataset:
    """A sliced dataset from the tiny task: 40 train / 60 validation per slice."""
    return tiny_task.initial_sliced_dataset(
        initial_sizes=40, validation_size=60, random_state=0
    )


@pytest.fixture
def tiny_source(tiny_task: SyntheticTask) -> GeneratorDataSource:
    return GeneratorDataSource(tiny_task, random_state=7)


@pytest.fixture
def fast_training() -> TrainingConfig:
    """A very small training configuration for unit tests."""
    return TrainingConfig(epochs=15, batch_size=16, optimizer="adam", learning_rate=0.05)


@pytest.fixture
def fast_curves() -> CurveEstimationConfig:
    """A very small learning-curve estimation configuration for unit tests."""
    return CurveEstimationConfig(n_points=4, n_repeats=1, min_fraction=0.3)


@pytest.fixture
def separable_dataset(rng: np.random.Generator) -> Dataset:
    """A well-separated 2-class dataset any sane classifier gets right."""
    n = 120
    features = np.vstack(
        [
            rng.normal(loc=(-2.0, 0.0), scale=0.5, size=(n // 2, 2)),
            rng.normal(loc=(2.0, 0.0), scale=0.5, size=(n // 2, 2)),
        ]
    )
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    return Dataset(features, labels)
