"""Tests for repro.ml.train."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.ml.linear import SoftmaxRegression
from repro.ml.train import Trainer, TrainingConfig, train_model
from repro.utils.exceptions import ConfigurationError


class TestTrainingConfig:
    def test_defaults_are_valid(self):
        config = TrainingConfig()
        assert config.epochs > 0 and config.batch_size > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"early_stopping_patience": -1},
            {"validation_fraction": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def test_returns_result_with_losses(self, separable_dataset, fast_training):
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=fast_training, random_state=0).fit(
            model, separable_dataset
        )
        assert result.epochs_run == fast_training.epochs
        assert len(result.train_losses) == result.epochs_run
        assert result.final_train_loss < result.train_losses[0]

    def test_training_is_deterministic_given_seeds(self, separable_dataset, fast_training):
        losses = []
        for _ in range(2):
            model = SoftmaxRegression(n_classes=2, random_state=5)
            result = Trainer(config=fast_training, random_state=9).fit(
                model, separable_dataset
            )
            losses.append(result.final_train_loss)
        assert losses[0] == pytest.approx(losses[1])

    def test_empty_dataset_rejected(self, fast_training):
        with pytest.raises(ConfigurationError):
            Trainer(config=fast_training).fit(
                SoftmaxRegression(n_classes=2), Dataset.empty(3)
            )

    def test_validation_losses_tracked(self, separable_dataset, fast_training):
        train = separable_dataset.take(80)
        validation = separable_dataset.subset(np.arange(80, len(separable_dataset)))
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=fast_training, random_state=0).fit(
            model, train, validation
        )
        assert len(result.validation_losses) == result.epochs_run

    def test_early_stopping_stops_before_max_epochs(self):
        # Random labels carry no signal, so validation loss stops improving
        # almost immediately and the patience criterion must kick in.
        rng = np.random.default_rng(0)
        train = Dataset(rng.normal(size=(60, 4)), rng.integers(0, 2, size=60))
        validation = Dataset(rng.normal(size=(40, 4)), rng.integers(0, 2, size=40))
        config = TrainingConfig(
            epochs=200,
            batch_size=16,
            learning_rate=0.1,
            early_stopping_patience=3,
        )
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, train, validation)
        assert result.stopped_early
        assert result.epochs_run < 200

    def test_internal_validation_split_used(self, separable_dataset):
        config = TrainingConfig(
            epochs=50,
            batch_size=16,
            learning_rate=0.1,
            early_stopping_patience=3,
            validation_fraction=0.25,
        )
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, separable_dataset)
        assert len(result.validation_losses) > 0

    def test_batch_size_larger_than_dataset(self, separable_dataset):
        config = TrainingConfig(epochs=5, batch_size=10_000, learning_rate=0.1)
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, separable_dataset)
        assert result.epochs_run == 5

    def test_train_model_convenience_wrapper(self, separable_dataset, fast_training):
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = train_model(
            model, separable_dataset, config=fast_training, random_state=0
        )
        assert result.epochs_run == fast_training.epochs


class TestRestoreBest:
    """The ``restore_best`` early-stopping flag (off by default)."""

    @staticmethod
    def _noisy_split(rng):
        train = Dataset(rng.normal(size=(60, 4)), rng.integers(0, 2, size=60))
        validation = Dataset(rng.normal(size=(40, 4)), rng.integers(0, 2, size=40))
        return train, validation

    def test_default_keeps_post_patience_weights(self, rng):
        train, validation = self._noisy_split(rng)
        config = TrainingConfig(
            epochs=200, batch_size=16, learning_rate=0.1, early_stopping_patience=3
        )
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, train, validation)
        assert result.stopped_early and not result.restored_best
        # The final weights correspond to the *last* epoch, not the best one.
        assert model.loss(validation) == pytest.approx(result.validation_losses[-1])

    def test_restore_best_restores_best_epoch_parameters(self, rng):
        train, validation = self._noisy_split(rng)
        config = TrainingConfig(
            epochs=200,
            batch_size=16,
            learning_rate=0.1,
            early_stopping_patience=3,
            restore_best=True,
        )
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, train, validation)
        assert result.stopped_early and result.restored_best
        assert result.best_epoch is not None
        best_loss = min(result.validation_losses)
        assert result.validation_losses[result.best_epoch - 1] == pytest.approx(best_loss)
        assert model.loss(validation) == pytest.approx(best_loss)
        assert model.loss(validation) <= result.validation_losses[-1]

    def test_best_epoch_tracked_without_restore(self, separable_dataset, fast_training):
        train = separable_dataset.take(80)
        validation = separable_dataset.subset(np.arange(80, len(separable_dataset)))
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=fast_training, random_state=0).fit(
            model, train, validation
        )
        assert result.best_epoch is not None and not result.restored_best

    def test_restore_best_without_early_stopping_is_inert(self, separable_dataset):
        config = TrainingConfig(epochs=5, batch_size=16, restore_best=True)
        model = SoftmaxRegression(n_classes=2, random_state=0)
        result = Trainer(config=config, random_state=0).fit(model, separable_dataset)
        assert not result.restored_best
