"""Tests for repro.ml.mlp."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.ml.mlp import MLPClassifier
from repro.ml.train import Trainer, TrainingConfig
from repro.utils.exceptions import ConfigurationError


def xor_dataset(n: int = 200, seed: int = 0) -> Dataset:
    """The XOR problem: not linearly separable, solvable by a small MLP."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(-1.0, 1.0, size=(n, 2))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int)
    features = features + rng.normal(0, 0.05, size=features.shape)
    return Dataset(features, labels)


class TestMLPStructure:
    def test_parameter_count(self):
        model = MLPClassifier(n_classes=3, hidden_sizes=(5, 4), random_state=0)
        model.initialize(7)
        params = model.parameters()
        # 3 layers -> 3 weight matrices + 3 bias vectors.
        assert len(params) == 6
        assert params[0].shape == (7, 5)
        assert params[2].shape == (5, 4)
        assert params[4].shape == (4, 3)

    def test_no_hidden_layers_is_linear(self):
        model = MLPClassifier(n_classes=2, hidden_sizes=(), random_state=0)
        model.initialize(3)
        assert len(model.parameters()) == 2

    def test_invalid_hidden_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(n_classes=2, hidden_sizes=(0,))

    def test_requires_initialization(self):
        with pytest.raises(ConfigurationError):
            MLPClassifier(n_classes=2).predict(np.zeros((1, 2)))

    def test_probabilities_sum_to_one(self):
        model = MLPClassifier(n_classes=5, hidden_sizes=(8,), random_state=0)
        model.initialize(4)
        probs = model.predict_proba(np.random.default_rng(0).normal(size=(6, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_clone_preserves_architecture(self):
        model = MLPClassifier(n_classes=4, hidden_sizes=(6, 3), l2=0.01)
        clone = model.clone()
        assert clone.hidden_sizes == (6, 3) and clone.n_classes == 4
        assert not clone.is_initialized


class TestMLPGradients:
    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        model = MLPClassifier(n_classes=2, hidden_sizes=(4,), l2=0.0, random_state=0)
        model.initialize(3)
        features = rng.normal(size=(10, 3))
        labels = rng.integers(0, 2, size=10)
        dataset = Dataset(features, labels)
        grads = model.gradients(features, labels)
        eps = 1e-6
        # Check one entry of the first weight matrix and one of the last bias.
        for param_index, coords in [(0, (1, 2)), (3, (0,))]:
            param = model.parameters()[param_index]
            param[coords] += eps
            loss_plus = model.loss(dataset)
            param[coords] -= 2 * eps
            loss_minus = model.loss(dataset)
            param[coords] += eps
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[param_index][coords] == pytest.approx(numeric, abs=1e-4)


class TestMLPLearning:
    def test_solves_xor(self):
        dataset = xor_dataset()
        model = MLPClassifier(n_classes=2, hidden_sizes=(16,), random_state=0)
        config = TrainingConfig(epochs=150, batch_size=32, learning_rate=0.05)
        Trainer(config=config, random_state=0).fit(model, dataset)
        accuracy = np.mean(model.predict(dataset.features) == dataset.labels)
        assert accuracy > 0.9

    def test_loss_decreases_with_training(self, separable_dataset):
        model = MLPClassifier(n_classes=2, hidden_sizes=(8,), random_state=0)
        initial_model = MLPClassifier(n_classes=2, hidden_sizes=(8,), random_state=0)
        initial_model.initialize(separable_dataset.n_features)
        initial_loss = initial_model.loss(separable_dataset)
        Trainer(
            config=TrainingConfig(epochs=30, batch_size=16, learning_rate=0.05),
            random_state=0,
        ).fit(model, separable_dataset)
        assert model.loss(separable_dataset) < initial_loss
