"""Test package."""
