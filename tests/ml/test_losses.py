"""Tests for repro.ml.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.losses import (
    binary_cross_entropy_loss,
    cross_entropy_gradient,
    cross_entropy_loss,
    one_hot,
    sigmoid,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_logits_do_not_overflow(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_uniform_logits_give_uniform_probs(self):
        probs = softmax(np.zeros((1, 4)))
        assert np.allclose(probs, 0.25)


class TestSigmoid:
    def test_symmetry(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([2.0]))[0] + sigmoid(np.array([-2.0]))[0] == pytest.approx(1.0)

    def test_extremes_are_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(values).all()
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == pytest.approx(1.0, abs=1e-12)


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2]), 3)
        assert encoded.tolist() == [[1, 0, 0], [0, 0, 1]]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)


class TestCrossEntropy:
    def test_perfect_prediction_is_zero(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy_loss(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction_is_log_k(self):
        probs = np.full((4, 5), 0.2)
        assert cross_entropy_loss(probs, np.array([0, 1, 2, 3])) == pytest.approx(np.log(5))

    def test_wrong_confident_prediction_is_large(self):
        probs = np.array([[1e-9, 1.0 - 1e-9]])
        assert cross_entropy_loss(probs, np.array([0])) > 10

    def test_empty_inputs_return_zero(self):
        assert cross_entropy_loss(np.empty((0, 3)), np.array([], dtype=int)) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.full((2, 2), 0.5), np.array([0]))

    def test_matches_binary_loss_on_two_classes(self):
        rng = np.random.default_rng(0)
        positive = rng.uniform(0.05, 0.95, size=20)
        probs = np.column_stack([1 - positive, positive])
        labels = rng.integers(0, 2, size=20)
        assert cross_entropy_loss(probs, labels) == pytest.approx(
            binary_cross_entropy_loss(positive, labels), rel=1e-9
        )


class TestCrossEntropyGradient:
    def test_gradient_shape_and_scale(self):
        probs = softmax(np.random.default_rng(0).normal(size=(6, 3)))
        grad = cross_entropy_gradient(probs, np.array([0, 1, 2, 0, 1, 2]))
        assert grad.shape == (6, 3)
        # Each row of (p - y) has zero sum, so the gradient rows sum to zero.
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 0])

        def loss_at(flat_logits):
            return cross_entropy_loss(softmax(flat_logits.reshape(4, 3)), labels)

        analytic = cross_entropy_gradient(softmax(logits), labels)
        eps = 1e-6
        for index in [(0, 0), (1, 2), (3, 1)]:
            shifted = logits.copy()
            shifted[index] += eps
            numeric = (loss_at(shifted.ravel()) - loss_at(logits.ravel())) / eps
            assert analytic[index] == pytest.approx(numeric, abs=1e-4)
