"""Tests for repro.ml.linear."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.ml.linear import LogisticRegression, SoftmaxRegression
from repro.ml.train import Trainer
from repro.utils.exceptions import ConfigurationError


class TestSoftmaxRegression:
    def test_requires_initialization(self):
        model = SoftmaxRegression(n_classes=3)
        with pytest.raises(ConfigurationError):
            model.predict_proba(np.zeros((1, 2)))

    def test_probabilities_sum_to_one(self):
        model = SoftmaxRegression(n_classes=4, random_state=0)
        model.initialize(5)
        probs = model.predict_proba(np.random.default_rng(0).normal(size=(7, 5)))
        assert probs.shape == (7, 4)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_learns_separable_data(self, separable_dataset, fast_training):
        model = SoftmaxRegression(n_classes=2, random_state=0)
        Trainer(config=fast_training, random_state=0).fit(model, separable_dataset)
        predictions = model.predict(separable_dataset.features)
        accuracy = np.mean(predictions == separable_dataset.labels)
        assert accuracy > 0.95
        assert model.loss(separable_dataset) < 0.3

    def test_gradients_shapes(self):
        model = SoftmaxRegression(n_classes=3, random_state=0)
        model.initialize(4)
        grads = model.gradients(np.zeros((6, 4)), np.zeros(6, dtype=int))
        assert grads[0].shape == (4, 3)
        assert grads[1].shape == (3,)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        model = SoftmaxRegression(n_classes=3, l2=0.0, random_state=0)
        model.initialize(4)
        features = rng.normal(size=(8, 4))
        labels = rng.integers(0, 3, size=8)
        dataset = Dataset(features, labels)
        grad_w = model.gradients(features, labels)[0]
        eps = 1e-6
        i, j = 2, 1
        model.weights[i, j] += eps
        loss_plus = model.loss(dataset)
        model.weights[i, j] -= 2 * eps
        loss_minus = model.loss(dataset)
        model.weights[i, j] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert grad_w[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_loss_on_empty_dataset_is_zero(self):
        model = SoftmaxRegression(n_classes=2, random_state=0)
        model.initialize(3)
        assert model.loss(Dataset.empty(3)) == 0.0

    def test_clone_is_untrained_copy(self):
        model = SoftmaxRegression(n_classes=3, l2=0.01, random_state=0)
        model.initialize(2)
        clone = model.clone()
        assert clone.n_classes == 3 and clone.l2 == 0.01
        assert not clone.is_initialized

    def test_invalid_n_classes(self):
        with pytest.raises(ConfigurationError):
            SoftmaxRegression(n_classes=0)


class TestLogisticRegression:
    def test_fit_and_predict_separable(self, separable_dataset):
        model = LogisticRegression(random_state=0).fit(separable_dataset, epochs=150)
        accuracy = np.mean(model.predict(separable_dataset.features) == separable_dataset.labels)
        assert accuracy > 0.95
        assert model.loss(separable_dataset) < 0.3

    def test_predict_proba_two_columns(self, separable_dataset):
        model = LogisticRegression(random_state=0).fit(separable_dataset, epochs=50)
        probs = model.predict_proba(separable_dataset.features)
        assert probs.shape == (len(separable_dataset), 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rejects_non_binary_labels(self):
        dataset = Dataset(np.zeros((3, 2)), np.array([0, 1, 2]))
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(dataset)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression().fit(Dataset.empty(2))

    def test_requires_initialization_for_inference(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression().decision_function(np.zeros((1, 2)))
