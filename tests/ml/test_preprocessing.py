"""Tests for repro.ml.preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.preprocessing import OneHotEncoder, StandardScaler
from repro.utils.exceptions import ConfigurationError


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_left_finite(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()
        assert np.allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_transform_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_fit_on_empty_raises(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.zeros((0, 2)))

    def test_fit_on_1d_raises(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.zeros(5))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        columns = np.array([[0], [1], [2], [1]])
        encoded = OneHotEncoder().fit_transform(columns)
        assert encoded.shape == (4, 3)
        assert encoded.sum(axis=1).tolist() == [1, 1, 1, 1]

    def test_multiple_columns(self):
        columns = np.array([[0, 10], [1, 20]])
        encoder = OneHotEncoder().fit(columns)
        assert encoder.n_output_features == 4

    def test_unseen_category_encodes_to_zeros(self):
        encoder = OneHotEncoder().fit(np.array([[0], [1]]))
        encoded = encoder.transform(np.array([[5]]))
        assert encoded.sum() == 0.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            OneHotEncoder().transform(np.array([[1]]))

    def test_wrong_column_count_raises(self):
        encoder = OneHotEncoder().fit(np.array([[0], [1]]))
        with pytest.raises(ConfigurationError):
            encoder.transform(np.array([[0, 1]]))

    def test_n_output_features_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            _ = OneHotEncoder().n_output_features
