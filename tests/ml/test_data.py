"""Tests for repro.ml.data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset, train_validation_split
from repro.utils.exceptions import ConfigurationError


def make_dataset(n: int = 10, d: int = 3) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, d)), rng.integers(0, 3, size=n))


class TestDatasetConstruction:
    def test_basic_properties(self):
        ds = make_dataset(12, 4)
        assert len(ds) == 12
        assert ds.n_features == 4

    def test_n_classes_from_labels(self):
        ds = Dataset(np.zeros((3, 2)), np.array([0, 2, 1]))
        assert ds.n_classes == 3

    def test_empty_dataset(self):
        ds = Dataset.empty(5)
        assert len(ds) == 0
        assert ds.n_features == 5
        assert ds.n_classes == 0

    def test_features_must_be_2d(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros(3), np.zeros(3, dtype=int))

    def test_labels_must_be_1d(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int))

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_dtype_coercion(self):
        ds = Dataset([[1, 2], [3, 4]], [0, 1])
        assert ds.features.dtype == np.float64
        assert ds.labels.dtype == np.int64

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 0, 2, 2]))
        assert ds.class_counts().tolist() == [2, 0, 2]
        assert ds.class_counts(n_classes=4).tolist() == [2, 0, 2, 0]


class TestDatasetOperations:
    def test_subset_selects_rows(self):
        ds = make_dataset(10)
        sub = ds.subset([0, 3, 5])
        assert len(sub) == 3
        assert np.array_equal(sub.features[1], ds.features[3])

    def test_sample_without_replacement(self):
        ds = make_dataset(20)
        sample = ds.sample(10, random_state=0)
        assert len(sample) == 10

    def test_sample_clamps_to_size(self):
        ds = make_dataset(5)
        assert len(ds.sample(100, random_state=0)) == 5

    def test_sample_zero(self):
        ds = make_dataset(5)
        assert len(ds.sample(0)) == 0

    def test_take_keeps_prefix(self):
        ds = make_dataset(10)
        taken = ds.take(4)
        assert np.array_equal(taken.features, ds.features[:4])

    def test_shuffle_is_permutation(self):
        ds = make_dataset(30)
        shuffled = ds.shuffle(random_state=0)
        assert sorted(shuffled.labels.tolist()) == sorted(ds.labels.tolist())
        assert len(shuffled) == len(ds)

    def test_concatenate(self):
        a, b = make_dataset(4), make_dataset(6)
        combined = Dataset.concatenate([a, b])
        assert len(combined) == 10

    def test_concatenate_skips_empty(self):
        a = make_dataset(4)
        combined = Dataset.concatenate([a, Dataset.empty(3)])
        assert len(combined) == 4

    def test_concatenate_mismatched_width_raises(self):
        with pytest.raises(ConfigurationError):
            Dataset.concatenate([make_dataset(3, 2), make_dataset(3, 4)])

    def test_concatenate_all_empty_raises(self):
        with pytest.raises(ConfigurationError):
            Dataset.concatenate([Dataset.empty(2)])


class TestTrainValidationSplit:
    def test_absolute_split(self):
        ds = make_dataset(20)
        train, val = train_validation_split(ds, 5, random_state=0)
        assert len(train) == 15 and len(val) == 5

    def test_fractional_split(self):
        ds = make_dataset(40)
        train, val = train_validation_split(ds, 0.25, random_state=0)
        assert len(val) == 10 and len(train) == 30

    def test_split_is_partition(self):
        ds = make_dataset(20)
        train, val = train_validation_split(ds, 8, random_state=0)
        combined = np.sort(
            np.concatenate([train.features[:, 0], val.features[:, 0]])
        )
        assert np.allclose(combined, np.sort(ds.features[:, 0]))

    def test_oversized_split_raises(self):
        with pytest.raises(ConfigurationError):
            train_validation_split(make_dataset(5), 6)

    def test_deterministic_given_seed(self):
        ds = make_dataset(20)
        _, val1 = train_validation_split(ds, 5, random_state=3)
        _, val2 = train_validation_split(ds, 5, random_state=3)
        assert np.array_equal(val1.features, val2.features)
