"""Tests for repro.ml.optim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.optim import SGD, Adam, Momentum, make_optimizer


def quadratic_descent(optimizer, steps: int = 200) -> float:
    """Minimize f(x) = ||x||^2 from a fixed start; return the final norm."""
    x = np.array([3.0, -2.0])
    for _ in range(steps):
        grad = 2.0 * x
        optimizer.update([x], [grad])
    return float(np.linalg.norm(x))


class TestOptimizersConverge:
    def test_sgd_reduces_quadratic(self):
        assert quadratic_descent(SGD(learning_rate=0.1)) < 1e-3

    def test_momentum_reduces_quadratic(self):
        assert quadratic_descent(Momentum(learning_rate=0.05, momentum=0.9)) < 1e-3

    def test_adam_reduces_quadratic(self):
        assert quadratic_descent(Adam(learning_rate=0.1), steps=400) < 1e-2

    def test_updates_are_in_place(self):
        x = np.array([1.0])
        SGD(learning_rate=0.5).update([x], [np.array([1.0])])
        assert x[0] == pytest.approx(0.5)


class TestOptimizerValidation:
    def test_negative_learning_rate_rejected(self):
        with pytest.raises(Exception):
            SGD(learning_rate=-0.1)

    def test_momentum_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)

    def test_adam_beta_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)


class TestOptimizerState:
    def test_momentum_reset_clears_velocity(self):
        opt = Momentum(learning_rate=0.1)
        x = np.array([1.0])
        opt.update([x], [np.array([1.0])])
        opt.reset()
        assert opt._velocities is None

    def test_adam_reset_clears_moments(self):
        opt = Adam()
        x = np.array([1.0])
        opt.update([x], [np.array([1.0])])
        opt.reset()
        assert opt._first_moments is None and opt._step == 0

    def test_adam_handles_multiple_parameter_arrays(self):
        opt = Adam(learning_rate=0.1)
        a, b = np.array([1.0, 2.0]), np.array([[1.0], [2.0]])
        opt.update([a, b], [np.ones_like(a), np.ones_like(b)])
        assert a.shape == (2,) and b.shape == (2, 1)


class TestMakeOptimizer:
    @pytest.mark.parametrize(
        "name, cls", [("sgd", SGD), ("momentum", Momentum), ("adam", Adam)]
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_optimizer(name), cls)

    def test_case_insensitive(self):
        assert isinstance(make_optimizer("  ADAM "), Adam)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_optimizer("lbfgs")
