"""Tests for repro.ml.metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.data import Dataset
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    log_loss,
    overall_loss,
    per_slice_losses,
)


class ConstantModel:
    """Predicts a fixed probability vector for every input."""

    def __init__(self, probabilities):
        self._probs = np.asarray(probabilities, dtype=float)

    def predict_proba(self, features):
        return np.tile(self._probs, (len(features), 1))

    def predict(self, features):
        return np.full(len(features), int(np.argmax(self._probs)))


@pytest.fixture
def three_class_dataset() -> Dataset:
    return Dataset(np.zeros((6, 2)), np.array([0, 0, 1, 1, 2, 2]))


class TestLogLossAndAccuracy:
    def test_log_loss_of_uniform_model(self, three_class_dataset):
        model = ConstantModel([1 / 3, 1 / 3, 1 / 3])
        assert log_loss(model, three_class_dataset) == pytest.approx(np.log(3))

    def test_accuracy_of_majority_model(self, three_class_dataset):
        model = ConstantModel([0.9, 0.05, 0.05])
        assert accuracy(model, three_class_dataset) == pytest.approx(2 / 6)
        assert error_rate(model, three_class_dataset) == pytest.approx(4 / 6)

    def test_empty_dataset_gives_nan(self):
        model = ConstantModel([0.5, 0.5])
        assert np.isnan(log_loss(model, Dataset.empty(2)))
        assert np.isnan(accuracy(model, Dataset.empty(2)))


class TestPerSliceLosses:
    def test_mapping_input_returns_dict(self, three_class_dataset):
        model = ConstantModel([0.8, 0.1, 0.1])
        result = per_slice_losses(model, {"a": three_class_dataset})
        assert set(result) == {"a"}

    def test_sequence_input_returns_list(self, three_class_dataset):
        model = ConstantModel([0.8, 0.1, 0.1])
        result = per_slice_losses(model, [three_class_dataset, three_class_dataset])
        assert len(result) == 2
        assert result[0] == pytest.approx(result[1])

    def test_overall_loss_weights_by_slice_size(self):
        model = ConstantModel([0.9, 0.1])
        small = Dataset(np.zeros((1, 1)), np.array([1]))  # loss = -log(0.1)
        large = Dataset(np.zeros((9, 1)), np.array([0] * 9))  # loss = -log(0.9)
        combined = overall_loss(model, [small, large])
        expected = (-np.log(0.1) * 1 + -np.log(0.9) * 9) / 10
        assert combined == pytest.approx(expected)

    def test_overall_loss_all_empty_is_nan(self):
        model = ConstantModel([1.0, 0.0])
        assert np.isnan(overall_loss(model, [Dataset.empty(1)]))


class TestConfusionMatrix:
    def test_counts_sum_to_dataset_size(self, three_class_dataset):
        model = ConstantModel([0.2, 0.5, 0.3])
        matrix = confusion_matrix(model, three_class_dataset, n_classes=3)
        assert matrix.sum() == len(three_class_dataset)
        # The constant model predicts class 1 for everything.
        assert matrix[:, 1].sum() == len(three_class_dataset)

    def test_empty_dataset(self):
        model = ConstantModel([1.0, 0.0])
        matrix = confusion_matrix(model, Dataset.empty(2), n_classes=2)
        assert matrix.sum() == 0
