"""Tests for repro.core.imbalance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.imbalance import get_change_ratio, imbalance_ratio
from repro.utils.exceptions import OptimizationError


class TestGetChangeRatio:
    def test_paper_worked_example(self):
        """Section 5.2 example: sizes [10,10], num [10,40], target 2 -> x = 0.5."""
        x = get_change_ratio([10, 10], [10, 40], target_ratio=2.0)
        assert x == pytest.approx(0.5)
        assert imbalance_ratio(np.array([10, 10]) + x * np.array([10, 40])) == pytest.approx(2.0)

    def test_target_equal_to_current_ratio_gives_zero(self):
        assert get_change_ratio([10, 20], [5, 5], target_ratio=2.0) == pytest.approx(0.0)

    def test_target_equal_to_full_allocation_gives_one(self):
        sizes, num = np.array([10.0, 10.0]), np.array([0.0, 30.0])
        full_ratio = imbalance_ratio(sizes + num)
        assert get_change_ratio(sizes, num, full_ratio) == pytest.approx(1.0)

    def test_decreasing_imbalance_direction(self):
        # Acquiring mostly for the small slice reduces the ratio; the target
        # lies between the full-allocation ratio and the current one.
        sizes, num = [10, 100], [90, 0]
        current = imbalance_ratio(sizes)  # 10
        after = imbalance_ratio(np.array(sizes) + np.array(num))  # 1
        target = 5.0
        x = get_change_ratio(sizes, num, target)
        assert 0 < x < 1
        assert imbalance_ratio(np.array(sizes) + x * np.array(num)) == pytest.approx(target)
        assert after < target < current

    def test_result_satisfies_target_generically(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            sizes = rng.integers(10, 200, size=4).astype(float)
            num = rng.integers(0, 150, size=4).astype(float)
            current = imbalance_ratio(sizes)
            after = imbalance_ratio(sizes + num)
            if abs(after - current) < 1e-9:
                continue
            target = current + 0.5 * (after - current)
            x = get_change_ratio(sizes, num, target)
            assert 0.0 <= x <= 1.0
            assert imbalance_ratio(sizes + x * num) == pytest.approx(target, abs=1e-6)

    def test_unbracketed_target_rejected(self):
        with pytest.raises(OptimizationError):
            get_change_ratio([10, 10], [10, 40], target_ratio=100.0)

    def test_zero_sizes_rejected(self):
        with pytest.raises(OptimizationError):
            get_change_ratio([0, 10], [5, 5], target_ratio=2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(OptimizationError):
            get_change_ratio([10, 10], [5], target_ratio=2.0)

    def test_target_below_one_rejected(self):
        with pytest.raises(OptimizationError):
            get_change_ratio([10, 10], [5, 5], target_ratio=0.5)
