"""Tests for repro.core.session (the streaming TunerSession API)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.acquisition.source import GeneratorDataSource, PoolDataSource
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.exceptions import ConfigurationError


def make_tuner(task, fast_training, fast_curves, **config_kwargs):
    """One deterministically seeded tuner on a fresh dataset instance."""
    config_kwargs.setdefault("evaluation_trials", 1)
    config_kwargs.setdefault("max_iterations", 4)
    sliced = task.initial_sliced_dataset(30, 50, random_state=0)
    source = GeneratorDataSource(task, random_state=1)
    return SliceTuner(
        sliced,
        source,
        trainer_config=fast_training,
        curve_config=fast_curves,
        config=SliceTunerConfig(**config_kwargs),
        random_state=0,
    )


class TestStreamMatchesRun:
    @pytest.mark.parametrize("strategy", ["uniform", "oneshot", "moderate", "bandit"])
    def test_stream_result_identical_to_batch_run(
        self, tiny_task, fast_training, fast_curves, strategy
    ):
        batch = make_tuner(tiny_task, fast_training, fast_curves)
        result = batch.run(budget=60, method=strategy, evaluate=False)

        streaming = make_tuner(tiny_task, fast_training, fast_curves)
        session = streaming.session()
        records = list(session.stream(budget=60, strategy=strategy))

        assert records == result.iterations
        assert session.result().to_json() == result.to_json()

    def test_stream_yields_records_incrementally(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        seen = []
        for record in session.stream(budget=60, strategy="moderate"):
            seen.append(record.iteration)
            assert session.result().n_iterations == len(seen)
        assert seen == sorted(seen)


class TestHooksAndEarlyStops:
    def test_hooks_fire_per_record(self, tiny_task, fast_training, fast_curves):
        acquired, iterated = [], []
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session(
            on_acquire=acquired.append, on_iteration=iterated.append
        )
        records = list(session.stream(budget=60, strategy="moderate"))
        assert acquired == records
        assert iterated == records

    def test_evaluate_hook_fires_around_run(
        self, tiny_task, fast_training, fast_curves
    ):
        stages = []
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session(
            on_evaluate=lambda stage, report: stages.append(stage)
        )
        result = session.run(budget=60, strategy="uniform", evaluate=True)
        assert stages == ["initial", "final"]
        assert result.initial_report is not None
        assert result.final_report is not None

    def test_unknown_hook_event_rejected(
        self, tiny_task, fast_training, fast_curves
    ):
        session = make_tuner(tiny_task, fast_training, fast_curves).session()
        with pytest.raises(ConfigurationError):
            session.add_hook("teardown", lambda record: None)

    def test_stop_when_ends_stream(self, tiny_task, fast_training, fast_curves):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        records = list(
            session.stream(
                budget=60, strategy="moderate", stop_when=lambda record: True
            )
        )
        assert len(records) == 1
        # The partial result reflects exactly what was acquired.
        assert session.result().spent == pytest.approx(records[0].spent)

    def test_add_early_stop_applies_to_later_streams(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session().add_early_stop(lambda record: True)
        records = list(session.stream(budget=60, strategy="moderate"))
        assert len(records) == 1

    def test_each_stream_keeps_its_own_run_state(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        # Starting a second stream must not redirect the first generator's
        # bookkeeping onto the second run's ledger/result.
        first = session.stream(budget=30, strategy="uniform")
        second = session.stream(budget=60, strategy="uniform")
        record_a = next(first)
        record_b = next(second)
        assert record_a.spent <= 30 + 1e-6
        assert record_b.spent <= 60 + 1e-6
        # The session-level handle points at the most recently started run.
        assert session.result().budget == 60.0
        assert session.result().iterations == [record_b]


class TestCheckpointing:
    def test_state_dict_round_trips_through_json(
        self, tiny_task, fast_training, fast_curves
    ):
        import json

        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        stream = session.stream(budget=60, strategy="moderate")
        next(stream)
        checkpoint = json.loads(json.dumps(session.state_dict()))
        assert checkpoint["strategy"] == "moderate"
        assert checkpoint["spent"] > 0

    def test_pause_and_resume_matches_uninterrupted_run(
        self, tiny_task, fast_training, fast_curves
    ):
        continuous = make_tuner(tiny_task, fast_training, fast_curves)
        expected = continuous.run(budget=60, method="moderate", evaluate=False)

        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        first = tuner.session()
        stream = first.stream(budget=60, strategy="moderate")
        next(stream)  # acquire one batch, then pause
        checkpoint = first.state_dict()

        second = tuner.session()
        second.load_state_dict(checkpoint)
        remaining = list(second.resume())
        result = second.result()

        assert result.n_iterations == expected.n_iterations
        assert len(remaining) == expected.n_iterations - 1
        assert result.to_json() == expected.to_json()

    def test_json_round_trip_resume_matches_uninterrupted_everywhere(
        self, tiny_task, fast_training, fast_curves
    ):
        """state_dict -> json -> load_state_dict -> resume() reproduces the
        uninterrupted result at *every* interrupt point of the run."""
        import json

        continuous = make_tuner(tiny_task, fast_training, fast_curves)
        expected = continuous.run(budget=90, method="moderate", evaluate=False)
        assert expected.n_iterations >= 2

        for interrupt_after in range(1, expected.n_iterations + 1):
            tuner = make_tuner(tiny_task, fast_training, fast_curves)
            session = tuner.session()
            stream = session.stream(budget=90, strategy="moderate")
            for _ in range(interrupt_after):
                next(stream)
            checkpoint = json.loads(json.dumps(session.state_dict()))

            restored = tuner.session()
            restored.load_state_dict(checkpoint)
            list(restored.resume())
            assert restored.result().to_json() == expected.to_json(), (
                f"diverged when interrupted after iteration {interrupt_after}"
            )

    def test_round_trip_at_mid_iteration_event_boundary(
        self, tiny_task, fast_training, fast_curves
    ):
        """Interrupting between a FulfillmentEvent and its IterationEvent
        (the finest-grained interrupt point stream_events exposes) still
        checkpoints a state that resumes to the uninterrupted result."""
        import json

        from repro.core.session import FulfillmentEvent

        continuous = make_tuner(tiny_task, fast_training, fast_curves)
        expected = continuous.run(budget=90, method="moderate", evaluate=False)

        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        events = session.stream_events(budget=90, strategy="moderate")
        for event in events:
            if isinstance(event, FulfillmentEvent):
                break  # the batch landed; its IterationEvent is still pending
        checkpoint = json.loads(json.dumps(session.state_dict()))

        restored = tuner.session()
        restored.load_state_dict(checkpoint)
        list(restored.resume())
        assert restored.result().to_json() == expected.to_json()

    def test_resume_without_state_rejected(
        self, tiny_task, fast_training, fast_curves
    ):
        session = make_tuner(tiny_task, fast_training, fast_curves).session()
        with pytest.raises(ConfigurationError):
            session.resume()
        with pytest.raises(ConfigurationError):
            session.result()

    def test_bad_checkpoint_version_rejected(
        self, tiny_task, fast_training, fast_curves
    ):
        session = make_tuner(tiny_task, fast_training, fast_curves).session()
        with pytest.raises(ConfigurationError):
            session.load_state_dict({"version": 99})

    def test_unregistered_strategy_checkpoint_restores_with_instance(
        self, tiny_task, fast_training, fast_curves
    ):
        from repro.core.plan import AcquisitionPlan
        from repro.core.strategy_api import AcquisitionStrategy

        class OnlySecondSlice(AcquisitionStrategy):
            name = "only_second_slice"
            is_iterative = False
            uses_lam = False

            def propose(self, state, budget, lam):
                name = state.sliced.names[1]
                cost = state.cost_model.cost(name)
                count = int(budget // cost)
                return AcquisitionPlan(
                    counts={name: count}, expected_cost=count * cost
                )

        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        list(session.stream(budget=24, strategy=OnlySecondSlice()))
        checkpoint = session.state_dict()

        restored = tuner.session()
        # The name is not in the registry, so an instance must be supplied.
        with pytest.raises(ConfigurationError):
            restored.load_state_dict(checkpoint)
        restored.load_state_dict(checkpoint, strategy=OnlySecondSlice())
        assert restored.result().method == "only_second_slice"

    def test_checkpoint_strategy_name_mismatch_rejected(
        self, tiny_task, fast_training, fast_curves
    ):
        from repro.core.registry import get_strategy

        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        session = tuner.session()
        stream = session.stream(budget=30, strategy="moderate")
        next(stream)
        checkpoint = session.state_dict()
        with pytest.raises(ConfigurationError):
            tuner.session().load_state_dict(
                checkpoint, strategy=get_strategy("uniform")
            )


class TestDeliveryAccounting:
    def test_exhausted_pool_charges_only_delivered(
        self, tiny_task, fast_training, fast_curves
    ):
        sliced = tiny_task.initial_sliced_dataset(30, 50, random_state=0)
        # slice_0's reserve pool runs dry after 5 examples.
        pools = {
            "slice_0": tiny_task.generate("slice_0", 5, random_state=2),
            "slice_1": tiny_task.generate("slice_1", 200, random_state=3),
            "slice_2": tiny_task.generate("slice_2", 200, random_state=4),
        }
        source = PoolDataSource(pools, random_state=5)
        tuner = SliceTuner(
            sliced,
            source,
            trainer_config=fast_training,
            curve_config=fast_curves,
            config=SliceTunerConfig(evaluation_trials=1),
            random_state=0,
        )
        result = tuner.run(budget=90, method="uniform", evaluate=False)

        assert result.total_acquired["slice_0"] == 5
        costs = {name: sliced[name].cost for name in sliced.names}
        delivered_cost = sum(
            costs[name] * count for name, count in result.total_acquired.items()
        )
        # The ledger charged for delivered examples only — no phantom spend.
        assert result.spent == pytest.approx(delivered_cost)

    def test_requested_records_what_was_asked(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        result = tuner.run(budget=60, method="uniform", evaluate=False)
        record = result.iterations[0]
        assert set(record.requested) == set(tuner.sliced.names)


class TestEvaluateReproducibility:
    def test_repeated_evaluate_agrees_despite_rng_consumption(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        first = tuner.evaluate()
        # Consume a large chunk of the tuner's main RNG stream in between.
        tuner._rng.integers(0, 1000, size=10_000)
        tuner.estimate_curves()
        second = tuner.evaluate()
        assert second.loss == pytest.approx(first.loss)
        assert second.slice_losses == pytest.approx(first.slice_losses)

    def test_same_seed_same_evaluation(self, tiny_task, fast_training, fast_curves):
        a = make_tuner(tiny_task, fast_training, fast_curves).evaluate()
        b = make_tuner(tiny_task, fast_training, fast_curves).evaluate()
        assert a.loss == pytest.approx(b.loss)

    def test_multi_trial_average_is_stable(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner = make_tuner(
            tiny_task, fast_training, fast_curves, evaluation_trials=3
        )
        first = tuner.evaluate()
        second = tuner.evaluate()
        assert np.isfinite(first.loss)
        assert second.loss == pytest.approx(first.loss)