"""Tests for repro.core.iterative (Algorithm 1)."""

from __future__ import annotations

from repro.acquisition.cost import EscalatingCost
from repro.core.iterative import IterativeAlgorithm
from repro.core.oneshot import OneShotAlgorithm
from repro.core.strategies import make_strategy
from repro.curves.estimator import CurveEstimationConfig, LearningCurveEstimator


def make_algorithm(
    fast_training, strategy="moderate", min_slice_size=0, max_iterations=10, lam=1.0
) -> IterativeAlgorithm:
    estimator = LearningCurveEstimator(
        trainer_config=fast_training,
        config=CurveEstimationConfig(n_points=3, n_repeats=1, min_fraction=0.3),
        random_state=0,
    )
    return IterativeAlgorithm(
        oneshot=OneShotAlgorithm(estimator, lam=lam),
        strategy=make_strategy(strategy),
        min_slice_size=min_slice_size,
        max_iterations=max_iterations,
    )


class TestIterativeAlgorithm:
    def test_budget_never_exceeded(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(tiny_sliced, budget=150, source=tiny_source)
        assert result.spent <= 150 + 1e-6

    def test_budget_mostly_spent(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(tiny_sliced, budget=150, source=tiny_source)
        assert result.spent >= 150 - 2 * max(tiny_sliced.costs())

    def test_slices_grow_by_acquired_amounts(
        self, tiny_sliced, tiny_source, fast_training
    ):
        initial_sizes = {name: tiny_sliced[name].size for name in tiny_sliced.names}
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(tiny_sliced, budget=120, source=tiny_source)
        for name in tiny_sliced.names:
            assert tiny_sliced[name].size == initial_sizes[name] + result.total_acquired[name]

    def test_multiple_iterations_performed(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training, strategy="conservative")
        result = algorithm.run(tiny_sliced, budget=200, source=tiny_source)
        assert result.n_iterations >= 2

    def test_conservative_uses_at_least_as_many_iterations_as_aggressive(
        self, tiny_task, fast_training
    ):
        from repro.acquisition.source import GeneratorDataSource

        iteration_counts = {}
        for strategy in ("conservative", "aggressive"):
            sliced = tiny_task.initial_sliced_dataset(
                {"slice_0": 20, "slice_1": 40, "slice_2": 80}, 50, random_state=0
            )
            source = GeneratorDataSource(tiny_task, random_state=1)
            algorithm = make_algorithm(fast_training, strategy=strategy)
            result = algorithm.run(sliced, budget=300, source=source)
            iteration_counts[strategy] = result.n_iterations
        assert iteration_counts["conservative"] >= iteration_counts["aggressive"]

    def test_imbalance_ratio_change_limited_per_iteration(
        self, tiny_task, fast_training
    ):
        from repro.acquisition.source import GeneratorDataSource

        sliced = tiny_task.initial_sliced_dataset(
            {"slice_0": 20, "slice_1": 20, "slice_2": 20}, 50, random_state=0
        )
        source = GeneratorDataSource(tiny_task, random_state=1)
        algorithm = make_algorithm(fast_training, strategy="conservative")
        result = algorithm.run(sliced, budget=400, source=source)
        for record in result.iterations:
            if record.iteration == 0:
                continue  # the min-size top-up step is not limited
            assert (
                abs(record.imbalance_after - record.imbalance_before)
                <= record.limit + 0.05
            )

    def test_minimum_slice_size_enforced_first(self, tiny_task, fast_training):
        from repro.acquisition.source import GeneratorDataSource

        sliced = tiny_task.initial_sliced_dataset(
            {"slice_0": 5, "slice_1": 30, "slice_2": 30}, 50, random_state=0
        )
        source = GeneratorDataSource(tiny_task, random_state=1)
        algorithm = make_algorithm(fast_training, min_slice_size=20)
        result = algorithm.run(sliced, budget=100, source=source)
        assert sliced["slice_0"].size >= 20
        # The top-up is recorded as iteration 0.
        assert result.iterations[0].iteration == 0
        assert result.iterations[0].requested.get("slice_0", 0) >= 15

    def test_max_iterations_respected(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training, strategy="conservative", max_iterations=2)
        result = algorithm.run(tiny_sliced, budget=500, source=tiny_source)
        main_iterations = [r for r in result.iterations if r.iteration > 0]
        assert len(main_iterations) <= 2

    def test_zero_budget_acquires_nothing(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(tiny_sliced, budget=0, source=tiny_source)
        assert result.spent == 0.0
        assert sum(result.total_acquired.values()) == 0

    def test_escalating_cost_model_recorded(self, tiny_sliced, tiny_source, fast_training):
        cost_model = EscalatingCost(
            {name: 1.0 for name in tiny_sliced.names}, escalation=0.2
        )
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(
            tiny_sliced, budget=100, source=tiny_source, cost_model=cost_model
        )
        assert result.spent <= 100 + 1e-6
        assert any(
            cost_model.batches_recorded(name) > 0 for name in tiny_sliced.names
        )

    def test_curve_parameters_recorded_per_iteration(
        self, tiny_sliced, tiny_source, fast_training
    ):
        algorithm = make_algorithm(fast_training)
        result = algorithm.run(tiny_sliced, budget=100, source=tiny_source)
        main_iterations = [r for r in result.iterations if r.iteration > 0]
        assert main_iterations
        for record in main_iterations:
            assert set(record.curve_parameters) == set(tiny_sliced.names)
            for b, a in record.curve_parameters.values():
                assert b > 0 and a > 0

    def test_result_method_matches_strategy(self, tiny_sliced, tiny_source, fast_training):
        algorithm = make_algorithm(fast_training, strategy="aggressive")
        result = algorithm.run(tiny_sliced, budget=60, source=tiny_source)
        assert result.method == "aggressive"
