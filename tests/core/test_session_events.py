"""Acceptance tests for the acquisition service inside tuning sessions.

The contract of the service redesign (ISSUE 3):

* every registered strategy (and the bandit) runs unmodified through the
  :class:`~repro.acquisition.service.AcquisitionService`, with fulfillment
  summaries recorded on each iteration record,
* a pool → generator failover completes a full ``SliceTuner.run`` with
  partial fulfillments surfaced as session events instead of exceptions,
  byte-identical between ``SerialExecutor`` and ``ProcessPoolExecutor``, and
* the ``sources=``/``source="name"`` constructor surface routes acquisitions
  across the named provider table (with the bare-``DataSource`` shim kept).
"""

from __future__ import annotations

import pytest

from repro.acquisition.cost import EscalatingCost
from repro.acquisition.providers import ThrottledSource
from repro.acquisition.source import GeneratorDataSource, PoolDataSource
from repro.bandit.rotting import RottingBanditAcquirer
from repro.core.registry import available_strategies
from repro.core.session import FulfillmentEvent, IterationEvent
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.engine.executor import ProcessPoolExecutor, SerialExecutor
from repro.utils.exceptions import ConfigurationError


def make_tuner(task, fast_training, fast_curves, *, sources=None, source=None,
               seed=0, executor=None, **config_kwargs):
    """One deterministically seeded tuner on a fresh dataset instance."""
    config_kwargs.setdefault("evaluation_trials", 1)
    config_kwargs.setdefault("max_iterations", 4)
    sliced = task.initial_sliced_dataset(30, 50, random_state=seed)
    if sources is None and source is None:
        source = GeneratorDataSource(task, random_state=seed + 1)
    return SliceTuner(
        sliced,
        source,
        trainer_config=fast_training,
        curve_config=fast_curves,
        config=SliceTunerConfig(**config_kwargs),
        random_state=seed,
        executor=executor,
        sources=sources,
    )


def pool_generator_sources(task, seed=0, pool_size=12):
    """A small pool that drains mid-run, with the generator as failover."""
    pools = {
        name: task.generate(name, pool_size, random_state=seed + 50 + i)
        for i, name in enumerate(task.slice_names)
    }
    return {
        "pool": PoolDataSource(pools, random_state=seed + 2),
        "generator": GeneratorDataSource(task, random_state=seed + 1),
    }


class TestAllStrategiesThroughService:
    @pytest.mark.parametrize("strategy", available_strategies())
    def test_strategy_runs_and_records_fulfillments(
        self, tiny_task, fast_training, fast_curves, strategy
    ):
        tuner = make_tuner(tiny_task, fast_training, fast_curves)
        result = tuner.run(budget=60, method=strategy, evaluate=False)
        assert result.spent > 0
        fulfillments = [
            entry for record in result.iterations for entry in record.fulfillments
        ]
        assert fulfillments, f"{strategy} produced no fulfillment records"
        for entry in fulfillments:
            assert entry["delivered"] <= entry["effective"] <= entry["requested"]
            if entry["delivered"]:
                assert entry["provenance"] == ["default"]

    @pytest.mark.parametrize("strategy", available_strategies())
    def test_strategy_runs_over_named_multi_source_table(
        self, tiny_task, fast_training, fast_curves, strategy
    ):
        tuner = make_tuner(
            tiny_task,
            fast_training,
            fast_curves,
            sources=pool_generator_sources(tiny_task),
        )
        result = tuner.run(budget=60, method=strategy, evaluate=False)
        assert result.spent > 0
        providers = {
            name
            for record in result.iterations
            for entry in record.fulfillments
            for name in entry["provenance"]
        }
        assert providers <= {"pool", "generator"} and providers


class TestCompositeFailoverAcceptance:
    def run_with_events(self, task, fast_training, fast_curves, executor):
        tuner = make_tuner(
            task,
            fast_training,
            fast_curves,
            sources=pool_generator_sources(task),
            executor=executor,
        )
        session = tuner.session()
        events = list(session.stream_events(budget=120, strategy="moderate"))
        return session.result(), events

    def test_partial_fulfillments_surface_as_events_byte_identical(
        self, tiny_task, fast_training, fast_curves
    ):
        serial_result, serial_events = self.run_with_events(
            tiny_task, fast_training, fast_curves, SerialExecutor()
        )
        with ProcessPoolExecutor(max_workers=1) as pool:
            process_result, process_events = self.run_with_events(
                tiny_task, fast_training, fast_curves, pool
            )

        # The run completed and consumed the failover: the 12-example pools
        # drain and the generator takes over, visibly in the provenance.
        assert serial_result.spent > 0
        fulfillment_events = [
            event for event in serial_events if isinstance(event, FulfillmentEvent)
        ]
        iteration_events = [
            event for event in serial_events if isinstance(event, IterationEvent)
        ]
        assert fulfillment_events and iteration_events
        providers = {
            name
            for event in fulfillment_events
            for name in event.fulfillment.provenance
        }
        assert "generator" in providers and "pool" in providers
        assert any(
            len(event.fulfillment.provenance) > 1 for event in fulfillment_events
        ), "no fulfillment was split across providers"

        # Byte-identical between executors: same events, same result.
        assert serial_result.to_json() == process_result.to_json()
        assert [e.kind for e in serial_events] == [e.kind for e in process_events]
        serial_summaries = [
            e.fulfillment.summary() for e in serial_events
            if isinstance(e, FulfillmentEvent)
        ]
        process_summaries = [
            e.fulfillment.summary() for e in process_events
            if isinstance(e, FulfillmentEvent)
        ]
        assert serial_summaries == process_summaries

    def test_fulfillment_hooks_fire(self, tiny_task, fast_training, fast_curves):
        tuner = make_tuner(
            tiny_task,
            fast_training,
            fast_curves,
            sources=pool_generator_sources(tiny_task),
        )
        seen = []
        session = tuner.session(on_fulfillment=lambda f: seen.append(f))
        records = list(session.stream(budget=80, strategy="uniform"))
        recorded = [entry for r in records for entry in r.fulfillments]
        assert len(seen) == len(recorded)
        assert [f.summary() for f in seen] == recorded


class TestAcquisitionRounds:
    def test_throttled_source_fills_within_extra_rounds(
        self, tiny_task, fast_training, fast_curves
    ):
        def build(rounds):
            throttled = ThrottledSource(
                GeneratorDataSource(tiny_task, random_state=1),
                per_request_cap=5,
            )
            return make_tuner(
                tiny_task,
                fast_training,
                fast_curves,
                sources={"throttled": throttled},
                acquisition_rounds=rounds,
            )

        single = build(1).run(budget=60, method="uniform", evaluate=False)
        multi = build(6).run(budget=60, method="uniform", evaluate=False)
        single_short = sum(
            entry["shortfall"]
            for record in single.iterations
            for entry in record.fulfillments
        )
        multi_short = sum(
            entry["shortfall"]
            for record in multi.iterations
            for entry in record.fulfillments
        )
        assert single_short > 0  # one round per request leaves orders short
        assert multi_short == 0  # extra rounds fill them
        assert multi.spent > single.spent

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            SliceTunerConfig(acquisition_rounds=0)


class TestSourcesConstructorSurface:
    def test_bare_datasource_shim(self, tiny_task):
        source = GeneratorDataSource(tiny_task, random_state=1)
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        tuner = SliceTuner(sliced, source, random_state=0)
        assert tuner.source is source
        assert tuner.sources == {"default": source}
        assert tuner.provider_order == ("default",)

    def test_named_table_with_lead_selection(self, tiny_task):
        sources = pool_generator_sources(tiny_task)
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        tuner = SliceTuner(sliced, "generator", sources=sources, random_state=0)
        assert tuner.provider_order == ("generator", "pool")
        assert tuner.sources == dict(sources)

    def test_single_entry_table_unwraps_to_provider(self, tiny_task):
        generator = GeneratorDataSource(tiny_task, random_state=1)
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        tuner = SliceTuner(sliced, sources={"generator": generator}, random_state=0)
        assert tuner.source is generator

    def test_missing_source_rejected(self, tiny_task):
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        with pytest.raises(ConfigurationError):
            SliceTuner(sliced, random_state=0)

    def test_unknown_lead_name_rejected(self, tiny_task):
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        sources = pool_generator_sources(tiny_task)
        with pytest.raises(ConfigurationError):
            SliceTuner(sliced, "nope", sources=sources, random_state=0)

    def test_name_without_table_rejected(self, tiny_task):
        sliced = tiny_task.initial_sliced_dataset(20, 20, random_state=0)
        with pytest.raises(ConfigurationError):
            SliceTuner(sliced, "generator", random_state=0)


class TestDeliveredNotRequestedSemantics:
    """Satellite: the ledger/cost model see delivered counts on every path."""

    def pool_only_tuner(self, task, fast_training, fast_curves, pool_size=8):
        pools = {
            name: task.generate(name, pool_size, random_state=60 + i)
            for i, name in enumerate(task.slice_names)
        }
        cost_model = EscalatingCost(
            {name: 1.0 for name in task.slice_names}, escalation=0.25
        )
        sliced = task.initial_sliced_dataset(30, 50, random_state=0)
        tuner = SliceTuner(
            sliced,
            PoolDataSource(pools, random_state=2),
            trainer_config=fast_training,
            curve_config=fast_curves,
            cost_model=cost_model,
            config=SliceTunerConfig(evaluation_trials=1, max_iterations=3),
            random_state=0,
        )
        return tuner, cost_model

    def test_session_path_charges_delivered_only(
        self, tiny_task, fast_training, fast_curves
    ):
        tuner, cost_model = self.pool_only_tuner(
            tiny_task, fast_training, fast_curves
        )
        result = tuner.run(budget=500, method="uniform", evaluate=False)
        delivered = sum(result.total_acquired.values())
        assert delivered <= 3 * 8  # the pools bound everything
        # Spending equals the sum of per-fulfillment charges, which are all
        # delivered * unit_cost — requested counts never reach the ledger.
        charged = sum(
            entry["cost"]
            for record in result.iterations
            for entry in record.fulfillments
        )
        assert result.spent == pytest.approx(charged)
        shortfalls = sum(
            entry["shortfall"]
            for record in result.iterations
            for entry in record.fulfillments
        )
        assert shortfalls > 0  # the dry pools did come back short
        for name in tiny_task.slice_names:
            non_empty = sum(
                1
                for record in result.iterations
                for entry in record.fulfillments
                if entry["slice"] == name and entry["delivered"] > 0
            )
            assert cost_model.batches_recorded(name) == non_empty

    def test_bandit_path_charges_delivered_only(
        self, tiny_task, fast_training
    ):
        pools = {
            name: tiny_task.generate(name, 6, random_state=70 + i)
            for i, name in enumerate(tiny_task.slice_names)
        }
        cost_model = EscalatingCost(
            {name: 1.0 for name in tiny_task.slice_names}, escalation=0.25
        )
        sliced = tiny_task.initial_sliced_dataset(30, 50, random_state=0)
        acquirer = RottingBanditAcquirer(
            batch_size=10,
            trainer_config=fast_training,
            random_state=0,
        )
        result = acquirer.run(
            sliced,
            budget=200,
            source=PoolDataSource(pools, random_state=2),
            cost_model=cost_model,
        )
        delivered = sum(result.total_acquired.values())
        assert delivered == 3 * 6  # everything the pools held, nothing more
        assert result.spent == pytest.approx(
            sum(entry["cost"] for entry in result.fulfillments)
        )
        empty_pulls = [
            entry for entry in result.fulfillments if entry["delivered"] == 0
        ]
        assert empty_pulls, "dry pools should surface as empty fulfillments"
        for name in tiny_task.slice_names:
            non_empty = sum(
                1
                for entry in result.fulfillments
                if entry["slice"] == name and entry["delivered"] > 0
            )
            assert cost_model.batches_recorded(name) == non_empty


class TestFulfillmentSerialization:
    def test_records_roundtrip_with_fulfillments(
        self, tiny_task, fast_training, fast_curves
    ):
        from repro.core.plan import TuningResult

        tuner = make_tuner(
            tiny_task,
            fast_training,
            fast_curves,
            sources=pool_generator_sources(tiny_task),
        )
        result = tuner.run(budget=80, method="uniform", evaluate=False)
        restored = TuningResult.from_json(result.to_json())
        assert [r.fulfillments for r in restored.iterations] == [
            r.fulfillments for r in result.iterations
        ]
        assert restored.to_json() == result.to_json()
