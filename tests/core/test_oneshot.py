"""Tests for repro.core.oneshot."""

from __future__ import annotations

import pytest

from repro.acquisition.cost import TableCost
from repro.core.oneshot import OneShotAlgorithm
from repro.curves.estimator import LearningCurveEstimator
from repro.curves.power_law import FittedCurve, PowerLawCurve


@pytest.fixture
def estimator(fast_training, fast_curves) -> LearningCurveEstimator:
    return LearningCurveEstimator(
        trainer_config=fast_training, config=fast_curves, random_state=0
    )


class TestOneShotAlgorithm:
    def test_plan_spends_at_most_budget(self, tiny_sliced, estimator):
        oneshot = OneShotAlgorithm(estimator, lam=1.0)
        plan, curves = oneshot.plan(tiny_sliced, budget=200)
        assert set(plan.counts) == set(tiny_sliced.names)
        assert set(curves) == set(tiny_sliced.names)
        costs = tiny_sliced.costs()
        spent = sum(
            plan.counts[name] * costs[i] for i, name in enumerate(tiny_sliced.names)
        )
        assert spent <= 200 + 1e-6

    def test_plan_spends_most_of_budget(self, tiny_sliced, estimator):
        oneshot = OneShotAlgorithm(estimator, lam=1.0)
        plan, _ = oneshot.plan(tiny_sliced, budget=200)
        assert plan.expected_cost >= 200 - max(tiny_sliced.costs())

    def test_reuses_provided_curves_without_training(self, tiny_sliced, estimator):
        curves = {
            name: FittedCurve(name, PowerLawCurve(b=2.0, a=0.3 + 0.1 * i))
            for i, name in enumerate(tiny_sliced.names)
        }
        oneshot = OneShotAlgorithm(estimator, lam=0.0)
        plan, returned = oneshot.plan(tiny_sliced, budget=100, curves=curves)
        assert estimator.trainings_performed == 0
        assert returned.keys() == curves.keys()
        assert plan.total_examples > 0

    def test_steeper_slice_gets_more(self, tiny_sliced, estimator):
        # All slices start at the same predicted loss (b = size^a so that
        # b * size^-a = 1), but slice 0's curve is far steeper; with lam=0
        # the optimizer should give it the largest share.
        size = float(tiny_sliced[tiny_sliced.names[0]].size)
        exponents = {tiny_sliced.names[0]: 0.9, tiny_sliced.names[1]: 0.1, tiny_sliced.names[2]: 0.1}
        curves = {
            name: FittedCurve(name, PowerLawCurve(b=size**a, a=a))
            for name, a in exponents.items()
        }
        oneshot = OneShotAlgorithm(estimator, lam=0.0)
        plan, _ = oneshot.plan(tiny_sliced, budget=150, curves=curves)
        assert plan.counts[tiny_sliced.names[0]] > plan.counts[tiny_sliced.names[1]]

    def test_explicit_cost_model_used(self, tiny_sliced, estimator):
        curves = {
            name: FittedCurve(name, PowerLawCurve(b=2.0, a=0.4))
            for name in tiny_sliced.names
        }
        # Make one slice prohibitively expensive: it should receive little.
        expensive = tiny_sliced.names[2]
        cost_model = TableCost({name: 1.0 for name in tiny_sliced.names} | {expensive: 50.0})
        oneshot = OneShotAlgorithm(estimator, lam=0.0)
        plan, _ = oneshot.plan(tiny_sliced, budget=100, curves=curves, cost_model=cost_model)
        assert plan.counts[expensive] <= min(
            plan.counts[tiny_sliced.names[0]], plan.counts[tiny_sliced.names[1]]
        )

    def test_zero_budget_plan_is_empty(self, tiny_sliced, estimator):
        curves = {
            name: FittedCurve(name, PowerLawCurve(b=2.0, a=0.4))
            for name in tiny_sliced.names
        }
        plan, _ = OneShotAlgorithm(estimator).plan(tiny_sliced, 0.0, curves=curves)
        assert plan.is_empty()

    def test_plan_text_rendering(self, tiny_sliced, estimator):
        curves = {
            name: FittedCurve(name, PowerLawCurve(b=2.0, a=0.4))
            for name in tiny_sliced.names
        }
        plan, _ = OneShotAlgorithm(estimator).plan(tiny_sliced, 60, curves=curves)
        text = plan.to_text()
        for name in tiny_sliced.names:
            assert name in text
