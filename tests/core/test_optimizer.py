"""Tests for repro.core.optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import (
    optimize_allocation,
    round_allocation,
    solve_greedy,
    solve_slsqp,
)
from repro.core.problem import SelectiveAcquisitionProblem


def make_problem(
    sizes=(100.0, 100.0),
    costs=(1.0, 1.0),
    b=(2.0, 2.0),
    a=(0.4, 0.4),
    budget=400.0,
    lam=1.0,
) -> SelectiveAcquisitionProblem:
    names = tuple(f"s{i}" for i in range(len(sizes)))
    return SelectiveAcquisitionProblem(
        slice_names=names,
        sizes=np.array(sizes, dtype=float),
        costs=np.array(costs, dtype=float),
        b=np.array(b, dtype=float),
        a=np.array(a, dtype=float),
        budget=float(budget),
        lam=float(lam),
    )


class TestContinuousSolvers:
    def test_slsqp_spends_whole_budget(self):
        problem = make_problem()
        allocation = solve_slsqp(problem)
        assert np.dot(problem.costs, allocation) == pytest.approx(problem.budget, rel=1e-4)
        assert np.all(allocation >= 0)

    def test_symmetric_problem_gets_symmetric_allocation(self):
        problem = make_problem()
        allocation = solve_slsqp(problem)
        assert allocation[0] == pytest.approx(allocation[1], rel=0.05)

    def test_steeper_curve_gets_more_data(self):
        # Both slices currently have the same loss (b chosen so that
        # b * 100^-a = 1), but slice 0's curve is much steeper, so acquiring
        # for it reduces loss faster and it should receive more budget.
        problem = make_problem(
            b=(100.0**0.8, 100.0**0.1), a=(0.8, 0.1), lam=0.0
        )
        allocation = solve_slsqp(problem)
        assert allocation[0] > allocation[1]

    def test_smaller_slice_with_identical_curves_gets_more_data(self):
        problem = make_problem(sizes=(50.0, 500.0), lam=0.0)
        allocation = solve_slsqp(problem)
        assert allocation[0] > allocation[1]

    def test_greedy_agrees_with_slsqp_on_budget(self):
        problem = make_problem(b=(3.0, 1.0), a=(0.5, 0.3))
        greedy = solve_greedy(problem, n_chunks=400)
        assert np.dot(problem.costs, greedy) == pytest.approx(problem.budget, rel=1e-6)

    def test_greedy_close_to_slsqp_objective(self):
        problem = make_problem(b=(3.0, 1.0), a=(0.5, 0.3), lam=0.5)
        slsqp_obj = problem.objective(solve_slsqp(problem))
        greedy_obj = problem.objective(solve_greedy(problem, n_chunks=400))
        assert greedy_obj == pytest.approx(slsqp_obj, rel=0.02)

    def test_zero_budget_returns_zeros(self):
        problem = make_problem(budget=0.0)
        assert np.all(solve_slsqp(problem) == 0)
        assert np.all(solve_greedy(problem) == 0)


class TestLambdaBehaviour:
    def test_high_lambda_prioritizes_high_loss_slice(self):
        # Slice 0 currently has a much higher loss; with a large lambda the
        # optimizer should push most of the budget there even though the
        # curves have identical shapes at their current points.
        problem_fair = make_problem(b=(6.0, 1.0), a=(0.3, 0.3), lam=10.0)
        problem_loss = make_problem(b=(6.0, 1.0), a=(0.3, 0.3), lam=0.0)
        fair_alloc = solve_slsqp(problem_fair)
        loss_alloc = solve_slsqp(problem_loss)
        fair_share = fair_alloc[0] / fair_alloc.sum()
        loss_share = loss_alloc[0] / loss_alloc.sum()
        assert fair_share >= loss_share - 1e-6
        assert fair_alloc[0] > fair_alloc[1]


class TestRounding:
    def test_rounded_allocation_is_integer_and_affordable(self):
        problem = make_problem(costs=(1.3, 0.7), budget=333.0)
        continuous = solve_slsqp(problem)
        rounded = round_allocation(problem, continuous)
        assert rounded.dtype.kind == "i"
        assert np.dot(problem.costs, rounded) <= problem.budget + 1e-6

    def test_rounding_spends_nearly_all_budget(self):
        problem = make_problem(costs=(1.0, 1.0), budget=500.0)
        rounded = round_allocation(problem, solve_slsqp(problem))
        spent = float(np.dot(problem.costs, rounded))
        assert spent >= problem.budget - max(problem.costs)

    def test_overspending_continuous_input_is_repaired(self):
        problem = make_problem(budget=10.0)
        rounded = round_allocation(problem, np.array([100.0, 100.0]))
        assert np.dot(problem.costs, rounded) <= problem.budget + 1e-6


class TestOptimizeAllocation:
    def test_returns_consistent_result(self):
        problem = make_problem(b=(3.0, 1.5), a=(0.5, 0.2), costs=(1.0, 1.5))
        result = optimize_allocation(problem)
        assert result.allocation.shape == (2,)
        assert result.spent <= problem.budget + 1e-6
        assert result.solver in ("slsqp", "greedy")
        assert result.as_dict(problem.slice_names)["s0"] == int(result.allocation[0])

    def test_zero_budget(self):
        result = optimize_allocation(make_problem(budget=0.0))
        assert result.allocation.sum() == 0
        assert result.spent == 0.0

    def test_allocation_improves_objective_over_no_acquisition(self):
        problem = make_problem(b=(3.0, 1.5), a=(0.5, 0.2))
        result = optimize_allocation(problem)
        assert problem.objective(result.allocation.astype(float)) < problem.objective(
            np.zeros(2)
        )

    def test_many_slices_scale(self):
        n = 12
        rng = np.random.default_rng(0)
        problem = make_problem(
            sizes=tuple(rng.integers(50, 300, n).astype(float)),
            costs=tuple(rng.uniform(0.8, 1.6, n)),
            b=tuple(rng.uniform(1.0, 4.0, n)),
            a=tuple(rng.uniform(0.1, 0.8, n)),
            budget=2000.0,
        )
        result = optimize_allocation(problem)
        assert result.allocation.shape == (n,)
        assert np.all(result.allocation >= 0)
        assert result.spent <= problem.budget + 1e-6
