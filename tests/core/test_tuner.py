"""Tests for repro.core.tuner (the SliceTuner orchestrator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import TuningResult
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def tuner(tiny_sliced, tiny_source, fast_training, fast_curves) -> SliceTuner:
    return SliceTuner(
        tiny_sliced,
        tiny_source,
        trainer_config=fast_training,
        curve_config=fast_curves,
        config=SliceTunerConfig(lam=1.0, evaluation_trials=1),
        random_state=0,
    )


class TestSliceTunerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lam": -1.0},
            {"min_slice_size": -1},
            {"max_iterations": 0},
            {"evaluation_trials": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SliceTunerConfig(**kwargs)


class TestCurvesAndPlans:
    def test_estimate_curves_per_slice(self, tuner, tiny_sliced):
        curves = tuner.estimate_curves()
        assert set(curves) == set(tiny_sliced.names)

    def test_plan_does_not_mutate_data(self, tuner, tiny_sliced):
        sizes_before = tiny_sliced.sizes().copy()
        plan = tuner.plan(budget=100)
        assert np.array_equal(tiny_sliced.sizes(), sizes_before)
        assert plan.total_examples > 0

    def test_evaluate_returns_report(self, tuner, tiny_sliced):
        report = tuner.evaluate()
        assert set(report.slice_losses) == set(tiny_sliced.names)
        assert np.isfinite(report.loss)


class TestRunMethods:
    @pytest.mark.parametrize(
        "method", ["uniform", "water_filling", "proportional", "oneshot", "moderate"]
    )
    def test_every_method_runs_and_respects_budget(
        self, tiny_task, fast_training, fast_curves, method
    ):
        from repro.acquisition.source import GeneratorDataSource

        sliced = tiny_task.initial_sliced_dataset(30, 50, random_state=0)
        source = GeneratorDataSource(tiny_task, random_state=1)
        tuner = SliceTuner(
            sliced,
            source,
            trainer_config=fast_training,
            curve_config=fast_curves,
            config=SliceTunerConfig(evaluation_trials=1),
            random_state=0,
        )
        result = tuner.run(budget=100, method=method, evaluate=True)
        assert isinstance(result, TuningResult)
        assert result.spent <= 100 + 1e-6
        assert result.initial_report is not None
        assert result.final_report is not None
        assert sum(result.total_acquired.values()) > 0

    def test_acquisition_grows_slices(self, tuner, tiny_sliced):
        before = tiny_sliced.sizes().sum()
        result = tuner.run(budget=90, method="uniform", evaluate=False)
        assert tiny_sliced.sizes().sum() == before + sum(result.total_acquired.values())

    def test_unknown_method_rejected(self, tuner):
        with pytest.raises(ConfigurationError):
            tuner.run(budget=10, method="random_forest")

    def test_evaluate_false_skips_reports(self, tuner):
        result = tuner.run(budget=60, method="uniform", evaluate=False)
        assert result.initial_report is None and result.final_report is None

    def test_uniform_allocates_similar_counts(self, tuner, tiny_sliced):
        result = tuner.run(budget=90, method="uniform", evaluate=False)
        counts = np.array([result.total_acquired[n] for n in tiny_sliced.names])
        assert counts.max() - counts.min() <= max(counts.max() // 2, 5)

    def test_water_filling_prefers_small_slices(
        self, tiny_task, fast_training, fast_curves
    ):
        from repro.acquisition.source import GeneratorDataSource

        sliced = tiny_task.initial_sliced_dataset(
            {"slice_0": 10, "slice_1": 60, "slice_2": 60}, 50, random_state=0
        )
        source = GeneratorDataSource(tiny_task, random_state=1)
        tuner = SliceTuner(
            sliced,
            source,
            trainer_config=fast_training,
            curve_config=fast_curves,
            random_state=0,
        )
        result = tuner.run(budget=60, method="water_filling", evaluate=False)
        assert result.total_acquired["slice_0"] > result.total_acquired["slice_1"]

    def test_run_lambda_override(self, tuner):
        result = tuner.run(budget=60, method="oneshot", lam=0.25, evaluate=False)
        assert result.lam == 0.25

    def test_acquisitions_table_renders(self, tuner):
        result = tuner.run(budget=60, method="moderate", evaluate=False)
        text = result.acquisitions_table()
        assert "method=moderate" in text


class TestEvaluationAveraging:
    def test_multiple_trials_average(self, tiny_sliced, tiny_source, fast_training, fast_curves):
        tuner = SliceTuner(
            tiny_sliced,
            tiny_source,
            trainer_config=fast_training,
            curve_config=fast_curves,
            config=SliceTunerConfig(evaluation_trials=3),
            random_state=0,
        )
        report = tuner.evaluate()
        assert np.isfinite(report.loss)
        assert report.avg_eer >= 0
