"""Tests for repro.core.registry (the pluggable strategy registry)."""

from __future__ import annotations

import pytest

from repro.acquisition.source import GeneratorDataSource
from repro.core.plan import AcquisitionPlan, TuningResult
from repro.core.registry import (
    available_strategies,
    get_strategy,
    is_registered,
    register_strategy,
    strategy_descriptions,
    unregister_strategy,
)
from repro.core.strategy_api import AcquisitionStrategy
from repro.core.tuner import SliceTuner, SliceTunerConfig
from repro.utils.exceptions import ConfigurationError

#: The seven legacy SliceTuner.run methods plus the rotting bandit.
EXPECTED_STRATEGIES = (
    "aggressive",
    "bandit",
    "conservative",
    "moderate",
    "oneshot",
    "proportional",
    "uniform",
    "water_filling",
)


class TestRegistryContents:
    def test_all_builtins_registered(self):
        assert set(EXPECTED_STRATEGIES) <= set(available_strategies())

    def test_descriptions_cover_every_strategy(self):
        descriptions = strategy_descriptions()
        for name in available_strategies():
            assert name in descriptions
            assert descriptions[name]

    def test_get_strategy_is_case_and_space_insensitive(self):
        assert get_strategy("  Moderate ").name == "moderate"

    def test_aliases_resolve(self):
        assert get_strategy("waterfilling").name == "water_filling"
        assert get_strategy("rotting_bandit").name == "bandit"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_strategy("alchemy")

    def test_is_registered(self):
        assert is_registered("moderate")
        assert is_registered("Bandit")
        assert not is_registered("alchemy")

    def test_factory_kwargs_forwarded(self):
        bandit = get_strategy("bandit", batch_size=7)
        assert bandit.batch_size == 7

    def test_fresh_instance_per_call(self):
        assert get_strategy("moderate") is not get_strategy("moderate")


class TestCustomRegistration:
    def test_register_and_run_custom_strategy(
        self, tiny_sliced, tiny_source, fast_training, fast_curves
    ):
        @register_strategy("cheapest_only", description="spend all on slice_0")
        class CheapestOnly(AcquisitionStrategy):
            name = "cheapest_only"
            is_iterative = False
            uses_lam = False

            def propose(self, state, budget, lam):
                name = state.sliced.names[0]
                cost = state.cost_model.cost(name)
                count = int(budget // cost)
                return AcquisitionPlan(
                    counts={name: count},
                    expected_cost=count * cost,
                    solver=self.name,
                )

        try:
            tuner = SliceTuner(
                tiny_sliced,
                tiny_source,
                trainer_config=fast_training,
                curve_config=fast_curves,
                random_state=0,
            )
            result = tuner.run(budget=30, method="cheapest_only", evaluate=False)
            assert result.method == "cheapest_only"
            assert result.total_acquired[tiny_sliced.names[0]] == 30
        finally:
            unregister_strategy("cheapest_only")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_strategy("moderate")
            class Clash(AcquisitionStrategy):  # pragma: no cover - never built
                pass

    def test_non_strategy_factory_rejected(self):
        @register_strategy("broken_factory")
        def broken():
            return object()

        try:
            with pytest.raises(ConfigurationError):
                get_strategy("broken_factory")
        finally:
            unregister_strategy("broken_factory")


class TestRoundTripEveryStrategy:
    @pytest.mark.parametrize("name", EXPECTED_STRATEGIES)
    def test_available_strategy_runs_end_to_end(
        self, tiny_task, fast_training, fast_curves, name
    ):
        sliced = tiny_task.initial_sliced_dataset(30, 50, random_state=0)
        source = GeneratorDataSource(tiny_task, random_state=1)
        tuner = SliceTuner(
            sliced,
            source,
            trainer_config=fast_training,
            curve_config=fast_curves,
            config=SliceTunerConfig(evaluation_trials=1, max_iterations=3),
            random_state=0,
        )
        result = tuner.run(budget=60, method=name, evaluate=False)
        assert isinstance(result, TuningResult)
        assert result.method == name
        assert result.spent <= 60 + 1e-6
        assert sum(result.total_acquired.values()) > 0