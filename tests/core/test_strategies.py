"""Tests for repro.core.strategies."""

from __future__ import annotations

import pytest

from repro.core.strategies import (
    AggressiveStrategy,
    ConservativeStrategy,
    ModerateStrategy,
    make_strategy,
)
from repro.utils.exceptions import ConfigurationError


class TestConservativeStrategy:
    def test_limit_stays_constant(self):
        strategy = ConservativeStrategy(initial_limit=1.0)
        limit = strategy.initial()
        for _ in range(5):
            limit = strategy.increase(limit)
        assert limit == 1.0

    def test_name(self):
        assert ConservativeStrategy().name == "conservative"


class TestModerateStrategy:
    def test_limit_grows_linearly(self):
        strategy = ModerateStrategy(initial_limit=1.0, step=1.0)
        limits = [strategy.initial()]
        for _ in range(3):
            limits.append(strategy.increase(limits[-1]))
        assert limits == [1.0, 2.0, 3.0, 4.0]

    def test_custom_step(self):
        assert ModerateStrategy(step=0.5).increase(2.0) == 2.5

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            ModerateStrategy(step=0.0)


class TestAggressiveStrategy:
    def test_limit_grows_geometrically(self):
        strategy = AggressiveStrategy(initial_limit=1.0, factor=2.0)
        limits = [strategy.initial()]
        for _ in range(3):
            limits.append(strategy.increase(limits[-1]))
        assert limits == [1.0, 2.0, 4.0, 8.0]

    def test_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            AggressiveStrategy(factor=1.0)


class TestStrategyOrdering:
    def test_aggressive_grows_fastest(self):
        """After several iterations: conservative < moderate < aggressive."""
        strategies = {
            name: make_strategy(name) for name in ("conservative", "moderate", "aggressive")
        }
        limits = {name: s.initial() for name, s in strategies.items()}
        for _ in range(4):
            for name, strategy in strategies.items():
                limits[name] = strategy.increase(limits[name])
        assert limits["conservative"] < limits["moderate"] < limits["aggressive"]


class TestMakeStrategy:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("conservative", ConservativeStrategy),
            ("moderate", ModerateStrategy),
            ("aggressive", AggressiveStrategy),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_case_and_whitespace_insensitive(self):
        assert isinstance(make_strategy("  Moderate "), ModerateStrategy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("yolo")

    def test_initial_limit_passed_through(self):
        assert make_strategy("conservative", initial_limit=2.5).initial() == 2.5

    def test_invalid_initial_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("moderate", initial_limit=0.0)
