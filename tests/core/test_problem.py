"""Tests for repro.core.problem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import SelectiveAcquisitionProblem
from repro.curves.power_law import FittedCurve, PowerLawCurve
from repro.utils.exceptions import ConfigurationError


def make_problem(**overrides) -> SelectiveAcquisitionProblem:
    defaults = dict(
        slice_names=("a", "b"),
        sizes=np.array([100.0, 200.0]),
        costs=np.array([1.0, 2.0]),
        b=np.array([2.0, 1.5]),
        a=np.array([0.4, 0.2]),
        budget=500.0,
        lam=1.0,
    )
    defaults.update(overrides)
    return SelectiveAcquisitionProblem(**defaults)


class TestConstruction:
    def test_valid_problem(self):
        problem = make_problem()
        assert problem.n_slices == 2

    def test_array_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(sizes=np.array([100.0]))

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(sizes=np.array([-1.0, 10.0]))

    def test_non_positive_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(costs=np.array([0.0, 1.0]))

    def test_non_positive_curve_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(b=np.array([0.0, 1.0]))
        with pytest.raises(ConfigurationError):
            make_problem(a=np.array([0.4, -0.1]))

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(budget=-1.0)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            make_problem(lam=-0.5)

    def test_empty_slices_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectiveAcquisitionProblem(
                slice_names=(),
                sizes=np.array([]),
                costs=np.array([]),
                b=np.array([]),
                a=np.array([]),
                budget=10.0,
            )


class TestFromCurves:
    def test_builds_from_fitted_curves(self):
        curves = {
            "a": FittedCurve("a", PowerLawCurve(b=2.0, a=0.4)),
            "b": PowerLawCurve(b=1.5, a=0.2),
        }
        problem = SelectiveAcquisitionProblem.from_curves(
            curves=curves,
            sizes={"a": 100, "b": 200},
            costs={"a": 1.0, "b": 2.0},
            budget=300.0,
            order=["a", "b"],
        )
        assert problem.b.tolist() == [2.0, 1.5]
        assert problem.a.tolist() == [0.4, 0.2]

    def test_missing_slice_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectiveAcquisitionProblem.from_curves(
                curves={"a": PowerLawCurve(b=1.0, a=0.3)},
                sizes={"a": 10},
                costs={},
                budget=10,
                order=["a", "b"],
            )

    def test_default_cost_is_one(self):
        problem = SelectiveAcquisitionProblem.from_curves(
            curves={"a": PowerLawCurve(b=1.0, a=0.3)},
            sizes={"a": 10},
            costs={},
            budget=10,
        )
        assert problem.costs.tolist() == [1.0]


class TestDerivedQuantities:
    def test_predicted_losses_at_current_sizes(self):
        problem = make_problem()
        losses = problem.predicted_losses()
        assert losses[0] == pytest.approx(2.0 * 100**-0.4)
        assert losses[1] == pytest.approx(1.5 * 200**-0.2)

    def test_average_current_loss(self):
        problem = make_problem()
        assert problem.average_current_loss() == pytest.approx(
            problem.predicted_losses().mean()
        )

    def test_objective_decreases_with_acquisition(self):
        problem = make_problem(lam=0.0)
        assert problem.objective(np.array([100.0, 100.0])) < problem.objective(
            np.zeros(2)
        )

    def test_objective_penalizes_above_average_slices(self):
        # Slice "a" is above the average loss, so a positive lambda adds a
        # penalty relative to the lam=0 objective at zero acquisition.
        fair = make_problem(lam=5.0)
        plain = make_problem(lam=0.0)
        assert fair.objective(np.zeros(2)) > plain.objective(np.zeros(2))

    def test_total_cost(self):
        problem = make_problem()
        assert problem.total_cost(np.array([10.0, 20.0])) == pytest.approx(
            10.0 * 1.0 + 20.0 * 2.0
        )
