"""Test package."""
