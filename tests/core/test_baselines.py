"""Tests for repro.core.baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    proportional_allocation,
    uniform_allocation,
    water_filling_allocation,
)
from repro.utils.exceptions import ConfigurationError


class TestUniformAllocation:
    def test_equal_amounts_with_unit_costs(self):
        allocation = uniform_allocation([100, 200, 300], budget=300)
        assert allocation.tolist() == [100, 100, 100]

    def test_budget_respected_with_costs(self):
        costs = np.array([1.0, 2.0, 3.0])
        allocation = uniform_allocation([10, 10, 10], budget=100, costs=costs)
        assert float(np.dot(costs, allocation)) <= 100 + 1e-9

    def test_leftover_budget_spent_on_cheapest(self):
        allocation = uniform_allocation([0, 0], budget=5, costs=[2.0, 3.0])
        assert float(np.dot([2.0, 3.0], allocation)) <= 5
        assert allocation.sum() >= 2  # 1 each, plus leftover to the cheap one

    def test_zero_budget(self):
        assert uniform_allocation([10, 20], budget=0).tolist() == [0, 0]

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_allocation([10], budget=-1)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_allocation([], budget=10)


class TestWaterFillingAllocation:
    def test_fills_small_slices_first(self):
        allocation = water_filling_allocation([10, 100], budget=50)
        assert allocation[0] > allocation[1]
        # The small slice is topped up towards the big one.
        assert allocation[0] >= 45

    def test_equal_sizes_split_evenly(self):
        allocation = water_filling_allocation([100, 100], budget=200)
        assert abs(int(allocation[0]) - int(allocation[1])) <= 1
        assert allocation.sum() == 200

    def test_final_sizes_nearly_equal_when_budget_allows(self):
        sizes = np.array([10, 40, 70])
        allocation = water_filling_allocation(sizes, budget=200)
        final = sizes + allocation
        assert final.max() - final.min() <= 2

    def test_budget_respected_with_costs(self):
        costs = np.array([1.5, 1.0])
        allocation = water_filling_allocation([5, 50], budget=30, costs=costs)
        assert float(np.dot(costs, allocation)) <= 30 + 1e-9

    def test_huge_budget_spends_it_all(self):
        costs = np.array([1.0, 1.0])
        allocation = water_filling_allocation([10, 10], budget=1000, costs=costs)
        assert float(np.dot(costs, allocation)) == pytest.approx(1000, abs=2)

    def test_paper_figure3_shape(self):
        """Figure 3b: after water filling all slices end up similar size."""
        sizes = np.array([500, 300, 200, 100, 50])
        allocation = water_filling_allocation(sizes, budget=600)
        final = sizes + allocation
        # The originally-largest slice receives nothing.
        assert allocation[0] == 0
        assert final.min() >= 250


class TestProportionalAllocation:
    def test_allocation_proportional_to_sizes(self):
        allocation = proportional_allocation([100, 300], budget=400)
        assert allocation[1] == pytest.approx(3 * allocation[0], abs=2)

    def test_preserves_bias(self):
        sizes = np.array([100, 300])
        allocation = proportional_allocation(sizes, budget=400)
        before = sizes[1] / sizes[0]
        after = (sizes[1] + allocation[1]) / (sizes[0] + allocation[0])
        assert after == pytest.approx(before, rel=0.05)

    def test_all_empty_slices_fall_back_to_uniform(self):
        allocation = proportional_allocation([0, 0], budget=10)
        assert allocation.sum() == 10

    def test_budget_respected(self):
        costs = np.array([2.0, 1.0])
        allocation = proportional_allocation([10, 30], budget=33, costs=costs)
        assert float(np.dot(costs, allocation)) <= 33 + 1e-9


class TestCommonValidation:
    @pytest.mark.parametrize(
        "fn", [uniform_allocation, water_filling_allocation, proportional_allocation]
    )
    def test_cost_length_mismatch_rejected(self, fn):
        with pytest.raises(ConfigurationError):
            fn([10, 20], budget=10, costs=[1.0])

    @pytest.mark.parametrize(
        "fn", [uniform_allocation, water_filling_allocation, proportional_allocation]
    )
    def test_negative_sizes_rejected(self, fn):
        with pytest.raises(ConfigurationError):
            fn([-5, 20], budget=10)

    @pytest.mark.parametrize(
        "fn", [uniform_allocation, water_filling_allocation, proportional_allocation]
    )
    def test_returns_non_negative_integers(self, fn):
        allocation = fn([13, 27, 8], budget=47, costs=[1.1, 0.9, 1.3])
        assert allocation.dtype.kind == "i"
        assert np.all(allocation >= 0)
