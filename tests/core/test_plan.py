"""Tests for repro.core.plan (result records)."""

from __future__ import annotations

import pytest

from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.fairness.report import FairnessReport


class TestAcquisitionPlan:
    def test_totals_and_emptiness(self):
        plan = AcquisitionPlan(counts={"a": 10, "b": 0}, expected_cost=10.0)
        assert plan.total_examples == 10
        assert not plan.is_empty()
        empty = AcquisitionPlan(counts={"a": 0}, expected_cost=0.0)
        assert empty.is_empty()

    def test_to_text_lists_slices(self):
        plan = AcquisitionPlan(
            counts={"a": 10, "b": 5}, expected_cost=17.5, solver="oneshot/slsqp"
        )
        text = plan.to_text()
        assert "a" in text and "b" in text
        assert "oneshot/slsqp" in text
        assert "15" in text  # total examples


class TestIterationRecord:
    def test_defaults(self):
        record = IterationRecord(iteration=2)
        assert record.iteration == 2
        assert record.requested == {} and record.acquired == {}
        assert record.spent == 0.0


class TestTuningResult:
    def make_result(self) -> TuningResult:
        result = TuningResult(method="moderate", lam=1.0, budget=500.0)
        result.iterations = [IterationRecord(iteration=1), IterationRecord(iteration=2)]
        result.total_acquired = {"a": 120, "b": 30}
        result.spent = 150.0
        return result

    def test_n_iterations(self):
        assert self.make_result().n_iterations == 2

    def test_acquisitions_table_contains_summary(self):
        text = self.make_result().acquisitions_table()
        assert "method=moderate" in text
        assert "budget=500" in text
        assert "a" in text and "120" in text

    def test_reports_optional(self):
        result = self.make_result()
        assert result.initial_report is None and result.final_report is None
        result.final_report = FairnessReport(
            loss=0.4, slice_losses={"a": 0.3, "b": 0.5}, avg_eer=0.1, max_eer=0.1
        )
        assert result.final_report.loss == pytest.approx(0.4)
