"""Tests for repro.core.plan (result records)."""

from __future__ import annotations

import pytest

from repro.core.plan import AcquisitionPlan, IterationRecord, TuningResult
from repro.fairness.report import FairnessReport


class TestAcquisitionPlan:
    def test_totals_and_emptiness(self):
        plan = AcquisitionPlan(counts={"a": 10, "b": 0}, expected_cost=10.0)
        assert plan.total_examples == 10
        assert not plan.is_empty()
        empty = AcquisitionPlan(counts={"a": 0}, expected_cost=0.0)
        assert empty.is_empty()

    def test_to_text_lists_slices(self):
        plan = AcquisitionPlan(
            counts={"a": 10, "b": 5}, expected_cost=17.5, solver="oneshot/slsqp"
        )
        text = plan.to_text()
        assert "a" in text and "b" in text
        assert "oneshot/slsqp" in text
        assert "15" in text  # total examples


class TestIterationRecord:
    def test_defaults(self):
        record = IterationRecord(iteration=2)
        assert record.iteration == 2
        assert record.requested == {} and record.acquired == {}
        assert record.spent == 0.0


class TestTuningResult:
    def make_result(self) -> TuningResult:
        result = TuningResult(method="moderate", lam=1.0, budget=500.0)
        result.iterations = [IterationRecord(iteration=1), IterationRecord(iteration=2)]
        result.total_acquired = {"a": 120, "b": 30}
        result.spent = 150.0
        return result

    def test_n_iterations(self):
        assert self.make_result().n_iterations == 2

    def test_acquisitions_table_contains_summary(self):
        text = self.make_result().acquisitions_table()
        assert "method=moderate" in text
        assert "budget=500" in text
        assert "a" in text and "120" in text

    def test_reports_optional(self):
        result = self.make_result()
        assert result.initial_report is None and result.final_report is None
        result.final_report = FairnessReport(
            loss=0.4, slice_losses={"a": 0.3, "b": 0.5}, avg_eer=0.1, max_eer=0.1
        )
        assert result.final_report.loss == pytest.approx(0.4)


class TestSerialization:
    def make_result(self) -> TuningResult:
        result = TuningResult(method="moderate", lam=1.0, budget=500.0)
        result.iterations = [
            IterationRecord(
                iteration=1,
                requested={"a": 100, "b": 20},
                acquired={"a": 90, "b": 20},
                spent=110.0,
                limit=1.0,
                imbalance_before=3.0,
                imbalance_after=2.0,
                curve_parameters={"a": (1.5, 0.4), "b": (2.0, 0.3)},
            ),
            IterationRecord(iteration=2, acquired={"a": 30, "b": 10}, spent=40.0),
        ]
        result.total_acquired = {"a": 120, "b": 30}
        result.spent = 150.0
        result.final_report = FairnessReport(
            loss=0.4,
            slice_losses={"a": 0.3, "b": 0.5},
            avg_eer=0.1,
            max_eer=0.2,
            slice_sizes={"a": 220, "b": 130},
        )
        return result

    def test_json_round_trip(self):
        result = self.make_result()
        restored = TuningResult.from_json(result.to_json())
        assert restored == result
        # A second round trip is byte-stable.
        assert restored.to_json() == result.to_json()

    def test_record_round_trip_preserves_tuples(self):
        record = self.make_result().iterations[0]
        restored = IterationRecord.from_dict(record.to_dict())
        assert restored == record
        assert isinstance(restored.curve_parameters["a"], tuple)

    def test_missing_reports_round_trip_as_none(self):
        result = TuningResult(method="uniform", lam=0.0, budget=10.0)
        restored = TuningResult.from_json(result.to_json())
        assert restored.initial_report is None and restored.final_report is None
