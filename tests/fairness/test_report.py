"""Tests for repro.fairness.report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fairness.report import FairnessReport, evaluate_fairness
from repro.ml.linear import SoftmaxRegression
from repro.ml.train import Trainer


class TestFairnessReport:
    def make_report(self) -> FairnessReport:
        return FairnessReport(
            loss=0.5,
            slice_losses={"a": 0.3, "b": 0.9, "c": 0.5},
            avg_eer=0.2,
            max_eer=0.4,
            slice_sizes={"a": 100, "b": 20, "c": 50},
        )

    def test_worst_and_best_slice(self):
        report = self.make_report()
        assert report.worst_slice() == "b"
        assert report.best_slice() == "a"

    def test_to_text_contains_all_slices(self):
        text = self.make_report().to_text()
        for name in ("a", "b", "c"):
            assert name in text
        assert "avg EER" in text


class TestEvaluateFairness:
    def test_report_consistent_with_definition(self, tiny_sliced, fast_training):
        model = SoftmaxRegression(n_classes=tiny_sliced.n_classes, random_state=0)
        Trainer(config=fast_training, random_state=0).fit(
            model, tiny_sliced.combined_train()
        )
        report = evaluate_fairness(model, tiny_sliced)
        assert set(report.slice_losses) == set(tiny_sliced.names)
        # Definition 1: avg EER is the mean absolute deviation from the loss.
        expected_avg = np.mean(
            [abs(v - report.loss) for v in report.slice_losses.values()]
        )
        assert report.avg_eer == pytest.approx(expected_avg)
        assert report.max_eer >= report.avg_eer
        assert report.slice_sizes == {
            name: tiny_sliced[name].size for name in tiny_sliced.names
        }

    def test_overall_loss_within_slice_loss_range(self, tiny_sliced, fast_training):
        model = SoftmaxRegression(n_classes=tiny_sliced.n_classes, random_state=0)
        Trainer(config=fast_training, random_state=0).fit(
            model, tiny_sliced.combined_train()
        )
        report = evaluate_fairness(model, tiny_sliced)
        assert min(report.slice_losses.values()) <= report.loss
        assert report.loss <= max(report.slice_losses.values())
