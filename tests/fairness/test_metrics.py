"""Tests for repro.fairness.metrics."""

from __future__ import annotations

import pytest

from repro.fairness.metrics import (
    average_equalized_error_rates,
    demographic_parity_difference,
    equalized_odds_difference,
    max_equalized_error_rates,
    unfairness,
)
from repro.utils.exceptions import ConfigurationError


class TestUnfairness:
    def test_paper_toy_example(self):
        """The Section 1 example: losses 5 and 3, overall 4 -> unfairness 1."""
        assert unfairness([5.0, 3.0], 4.0) == pytest.approx(1.0)

    def test_paper_toy_example_after_acquisition(self):
        """Losses 2 and 3 with overall 2.4 -> unfairness 0.5."""
        assert unfairness([2.0, 3.0], 2.4) == pytest.approx(0.5)

    def test_equal_losses_are_perfectly_fair(self):
        assert unfairness([0.4, 0.4, 0.4], 0.4) == pytest.approx(0.0)

    def test_max_aggregate(self):
        assert unfairness([5.0, 3.0], 4.0, aggregate="max") == pytest.approx(1.0)
        assert unfairness([5.0, 3.9], 4.0, aggregate="max") == pytest.approx(1.0)

    def test_mapping_input(self):
        assert unfairness({"a": 5.0, "b": 3.0}, 4.0) == pytest.approx(1.0)

    def test_invalid_aggregate_rejected(self):
        with pytest.raises(ConfigurationError):
            unfairness([1.0], 1.0, aggregate="median")

    def test_empty_losses_rejected(self):
        with pytest.raises(ConfigurationError):
            unfairness([], 1.0)

    def test_non_finite_losses_rejected(self):
        with pytest.raises(ConfigurationError):
            unfairness([float("nan")], 1.0)
        with pytest.raises(ConfigurationError):
            unfairness([1.0], float("inf"))

    def test_named_wrappers(self):
        losses = [0.5, 0.3, 0.7]
        overall = 0.45
        assert average_equalized_error_rates(losses, overall) == pytest.approx(
            unfairness(losses, overall)
        )
        assert max_equalized_error_rates(losses, overall) == pytest.approx(
            unfairness(losses, overall, aggregate="max")
        )


class TestDemographicParity:
    def test_equal_rates_give_zero(self):
        predictions = [1, 0, 1, 0]
        groups = [0, 0, 1, 1]
        assert demographic_parity_difference(predictions, groups) == pytest.approx(0.0)

    def test_maximal_gap(self):
        predictions = [1, 1, 0, 0]
        groups = [0, 0, 1, 1]
        assert demographic_parity_difference(predictions, groups) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            demographic_parity_difference([1], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            demographic_parity_difference([], [])


class TestEqualizedOdds:
    def test_identical_behaviour_across_groups_gives_zero(self):
        predictions = [1, 0, 1, 0]
        labels = [1, 0, 1, 0]
        groups = [0, 0, 1, 1]
        assert equalized_odds_difference(predictions, labels, groups) == pytest.approx(0.0)

    def test_tpr_gap_detected(self):
        # Group 0: TPR 1.0; group 1: TPR 0.0.
        predictions = [1, 1, 0, 0]
        labels = [1, 1, 1, 1]
        groups = [0, 0, 1, 1]
        assert equalized_odds_difference(predictions, labels, groups) == pytest.approx(1.0)

    def test_single_class_groups_handled(self):
        predictions = [1, 1]
        labels = [1, 1]
        groups = [0, 1]
        assert equalized_odds_difference(predictions, labels, groups) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            equalized_odds_difference([1], [1, 0], [0, 1])
