"""Test package."""
